//! The simulated cluster: table administration, request routing, cost
//! charging, fault injection and storage accounting.
//!
//! A [`Cluster`] plays the role of the paper's HBase layer (HBase + HDFS +
//! ZooKeeper on eight EC2 nodes).  Tables are split into [`Region`]s hosted
//! by a configurable number of region servers; every client-visible
//! operation charges its simulated cost (RPC round trip, server work, WAL
//! sync, scan streaming) into the shared [`SimClock`].
//!
//! # Failure model
//!
//! Three layers, all deterministic:
//!
//! * **Injected op faults** ([`FaultPlan`]): every charged op first advances
//!   the crash schedule (region servers go down at fixed sim instants for
//!   their MTTR) and then draws from a seeded RNG for RPC timeouts,
//!   transient errors and slow-region spikes.  Failed attempts charge their
//!   penalty and return a [`StoreError::retryable`] error.
//! * **Client retries** ([`RetryPolicy`]): public ops wrap their one-attempt
//!   bodies in capped exponential backoff charged to the sim clock, so a
//!   down server's MTTR window passes *during* the backoff.
//! * **Durability** (WAL + checkpoint): writes append full-payload
//!   [`WalOp`]s to their server's log; with `wal_sync_interval > 1` the sync
//!   is deferred (group commit) and only the syncing write pays
//!   `effective_wal_sync`.  The durable state is the last
//!   [`Cluster::checkpoint`] snapshot plus all *synced* WAL records;
//!   [`Cluster::crash`] drops everything else and [`Cluster::recover`]
//!   rebuilds exactly that state by timestamp-ordered replay.
//!
//! With no fault plan and no retry policy configured (the default), the hot
//! path adds a single branch per op: no RNG draws, no extra charges, and
//! figures are byte-identical to a build without this module.

use crate::cell::Timestamp;
use crate::error::{StoreError, StoreResult};
use crate::fault::{FaultDraw, FaultPlan, FaultState, FaultStats};
use crate::metrics::{AtomicOpCounters, ClusterMetrics, ReplicationStats, TableMetrics};
use crate::ops::{CheckAndPut, Delete, Get, Increment, Put, Scan};
use crate::region::{Region, RegionId, RegionServerId};
use crate::retry::{RetryPolicy, RetryRuntime};
use crate::table::{ResultRow, TableSchema};
use crate::wal::{WalEntry, WalOp, WriteAheadLog};
use parking_lot::{Mutex, RwLock};
use simclock::{CostModel, SimClock, SimDuration, SimInstant};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of region servers (the paper uses five slave nodes).
    pub region_servers: usize,
    /// A region is split once it exceeds this many bytes.
    pub region_split_bytes: usize,
    /// Cost model charged for every operation.
    pub cost_model: CostModel,
    /// Group-commit interval: a write syncs its server's WAL once the
    /// unsynced batch reaches this many records.  `1` (the default) syncs
    /// every write — full durability, and cost accounting identical to a
    /// store without group commit.  Larger intervals defer the sync cost to
    /// the batch-closing write but leave acked writes vulnerable to a crash.
    pub wal_sync_interval: usize,
    /// Deterministic fault schedule; `None` (the default) injects nothing
    /// and adds no RNG draws or charges to any op.
    pub fault_plan: Option<FaultPlan>,
    /// Client-side retry policy wrapped around every public op; `None` (the
    /// default) fails ops on the first fault.
    pub retry: Option<RetryPolicy>,
    /// Copies of each region: a primary plus `replication_factor - 1`
    /// followers on deterministically chosen servers.  With a factor > 1,
    /// every group-commit flush ships the newly synced records to the
    /// region's followers (cost: `CostModel::replica_ship` per record per
    /// follower), and a scheduled server crash **fails over** the victim's
    /// regions to their most-caught-up live follower instead of stalling
    /// them for the MTTR window.  The default of `1` disables replication
    /// entirely: no registry, no extra charges, figures byte-identical to a
    /// build without this feature.
    pub replication_factor: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            region_servers: 5,
            region_split_bytes: 8 * 1024 * 1024,
            cost_model: CostModel::default(),
            wal_sync_interval: 1,
            fault_plan: None,
            retry: None,
            replication_factor: 1,
        }
    }
}

/// What [`Cluster::recover`] did: how much WAL it replayed and what the
/// recovery cost on the simulated clock was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Synced WAL records replayed over the checkpoint baseline.
    pub replayed_entries: u64,
    /// Tables whose state was restored (baseline or cleared + replayed).
    pub restored_tables: usize,
    /// Simulated time charged for the recovery (`CostModel::recovery_cost`).
    pub recovery_sim: SimDuration,
}

/// What [`Cluster::crash`] lost: the acked-but-unsynced WAL tail dropped
/// from each region server's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// Unsynced records lost per server, indexed by region-server id.
    pub lost_per_server: Vec<usize>,
}

impl CrashReport {
    /// Total unsynced records lost across every server.
    pub fn total(&self) -> usize {
        self.lost_per_server.iter().sum()
    }
}

pub(crate) struct TableState {
    pub(crate) schema: TableSchema,
    pub(crate) regions: RwLock<Vec<Region>>,
}

/// One region's entry in the replication registry: who owns it, who follows
/// it, and how far each follower's shipped-log copy reaches.
///
/// `shipped` counts this region's records made durable through the group
/// commit (the shipped stream); a follower whose `acked` position equals
/// `shipped` holds a full in-sync copy and is promotable.  Shipping is
/// *synchronous* bookkeeping — a live, in-sync follower acknowledges each
/// flushed batch within the write's charge — so a follower only falls
/// behind while it is down, and catches up by replaying the stream from its
/// acked position when it rejoins.
#[derive(Debug, Clone)]
struct ReplicaSet {
    /// Server currently owning the region (serves reads and writes).
    primary: usize,
    /// Fencing epoch, bumped once per failover.  A writer that captured an
    /// older epoch is a zombie and its fenced writes are refused.
    epoch: u64,
    /// Follower servers, in placement order (the failover tie-break).
    followers: Vec<usize>,
    /// Records of this region shipped (synced) so far.
    shipped: u64,
    /// Per-follower acknowledged position in the shipped stream.
    acked: BTreeMap<usize, u64>,
}

/// The replication registry: replica placement, fencing epochs and shipping
/// offsets for every region.  Models the metadata a real deployment keeps
/// in ZooKeeper — it deliberately lives *outside* the region structs so
/// failover decisions and epochs survive checkpoint-baseline restores.
#[derive(Debug, Default)]
struct ReplicationInner {
    /// Per-region replica sets, keyed by region id.
    regions: BTreeMap<u64, ReplicaSet>,
    /// Crashed servers pending rejoin: server → sim nanos of rejoin.
    rejoin_at: BTreeMap<usize, u64>,
    /// Ship events (record × follower acknowledgements) so far.
    records_shipped: u64,
    /// Failovers performed.
    failovers: u64,
    /// Catch-up replays performed by rejoining followers (one per lagging
    /// region per rejoin).
    catchup_replays: u64,
    /// Total records replayed by catch-ups.
    catchup_records: u64,
}

/// The simulated HBase-class cluster.
///
/// Cheap to clone; clones share all state (tables, clock, metrics), mirroring
/// multiple clients holding connections to the same cluster.
///
/// Each handle carries its own **charge sink** clock: ordinarily the shared
/// cluster clock, but region-parallel scans rebind worker handles to private
/// clocks (see [`Cluster::par_scan_stream`]) so per-worker sim deltas can be
/// merged deterministically (max for elapsed, sum for counters).
#[derive(Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
    clock: SimClock,
}

struct ClusterInner {
    config: ClusterConfig,
    tables: RwLock<BTreeMap<String, Arc<TableState>>>,
    counters: AtomicOpCounters,
    wals: Vec<WriteAheadLog>,
    next_timestamp: AtomicU64,
    next_region_id: AtomicU64,
    next_server: AtomicU64,
    /// Set by [`Cluster::crash`]; every op fails with `ClusterDown` until
    /// [`Cluster::recover`] clears it.
    crashed: AtomicBool,
    /// Last durable checkpoint: per table, the region snapshot recovery
    /// replays the WAL over.  Empty until the first [`Cluster::checkpoint`].
    baseline: RwLock<BTreeMap<String, Vec<Region>>>,
    faults: Option<FaultState>,
    retry: Option<RetryRuntime>,
    /// Replication registry; untouched (and never locked on any op path)
    /// when `replication_factor <= 1`.
    ///
    /// Lock order: a thread holding a table's region lock may take this
    /// mutex (the ship path), so no code path may take a region lock while
    /// holding it.
    replication: Mutex<ReplicationInner>,
}

impl Cluster {
    /// Creates a cluster with its own fresh [`SimClock`].
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_clock(config, SimClock::new())
    }

    /// Creates a cluster charging costs into an existing clock (so higher
    /// layers, e.g. the MVCC transaction server, share the same timeline).
    pub fn with_clock(config: ClusterConfig, clock: SimClock) -> Self {
        let servers = config.region_servers.max(1);
        Cluster {
            inner: Arc::new(ClusterInner {
                wals: (0..servers).map(|_| WriteAheadLog::new()).collect(),
                faults: config
                    .fault_plan
                    .clone()
                    .map(|plan| FaultState::new(plan, servers)),
                retry: config.retry.clone().map(RetryRuntime::new),
                config,
                tables: RwLock::new(BTreeMap::new()),
                counters: AtomicOpCounters::default(),
                next_timestamp: AtomicU64::new(1),
                next_region_id: AtomicU64::new(1),
                next_server: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
                baseline: RwLock::new(BTreeMap::new()),
                replication: Mutex::new(ReplicationInner::default()),
            }),
            clock,
        }
    }

    /// The clock this handle charges costs into (the shared cluster clock,
    /// unless this is a parallel worker's rebound handle).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// A handle over the same cluster state whose charges land on `clock`
    /// instead of the shared timeline.  Parallel scan workers use this so
    /// their sim-cost deltas can be merged (`max` of workers) at the barrier
    /// rather than summing serially on the shared clock.
    pub(crate) fn with_charge_sink(&self, clock: SimClock) -> Cluster {
        Cluster {
            inner: Arc::clone(&self.inner),
            clock,
        }
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.config.cost_model
    }

    /// True if a fault plan is configured (used to route parallel scans to
    /// the serial path: fault scheduling is defined on the shared timeline,
    /// not on parallel workers' private clocks).
    pub fn faults_enabled(&self) -> bool {
        self.inner.faults.is_some()
    }

    /// Next logical cell timestamp (monotonically increasing).  Timestamps
    /// are globally unique across ops and servers, which is what lets
    /// recovery order replayed WAL records from different server logs.
    pub fn next_timestamp(&self) -> Timestamp {
        self.inner.next_timestamp.fetch_add(1, Ordering::SeqCst)
    }

    pub(crate) fn charge(&self, cost: SimDuration) {
        self.clock.charge(cost);
    }

    /// Records one page of streamed scan rows in the operation counters
    /// (the per-scan `scans` count is bumped once, at cursor creation).
    pub(crate) fn record_scan_page(&self, rows: u64, bytes: u64) {
        AtomicOpCounters::bump(&self.inner.counters.scanned_rows, rows);
        AtomicOpCounters::bump(&self.inner.counters.scanned_bytes, bytes);
    }

    /// Bumps the scan counter (one per opened cursor — a parallel scan
    /// counts as one logical scan regardless of worker count).
    pub(crate) fn record_scan_open(&self) {
        AtomicOpCounters::bump(&self.inner.counters.scans, 1);
    }

    fn pick_server(&self) -> RegionServerId {
        let servers = self.inner.config.region_servers.max(1);
        RegionServerId(
            (self.inner.next_server.fetch_add(1, Ordering::Relaxed) as usize) % servers,
        )
    }

    fn next_region_id(&self) -> RegionId {
        RegionId(self.inner.next_region_id.fetch_add(1, Ordering::Relaxed))
    }

    // ----- fault machinery -------------------------------------------------

    /// Entry gate of every charged op: rejects when the cluster is crashed,
    /// then fires any scheduled region-server crashes that are due on the
    /// sim clock.  Called before any region lock is taken.
    pub(crate) fn precheck(&self) -> StoreResult<()> {
        if self.inner.crashed.load(Ordering::Acquire) {
            return Err(StoreError::ClusterDown);
        }
        if let Some(faults) = &self.inner.faults {
            self.advance_faults(faults);
        }
        Ok(())
    }

    /// Fires every crash event whose scheduled instant has passed: the
    /// victim loses its unsynced WAL tail (and the affected region state is
    /// rebuilt from durable state), then stays down for its MTTR.  With
    /// replication on, rejoins whose MTTR has elapsed are processed first
    /// (catch-up replay), and each fresh victim's regions fail over to
    /// their most-caught-up live follower before any rebuild.
    fn advance_faults(&self, faults: &FaultState) {
        let now = self.clock.now();
        if self.replication_enabled() {
            self.process_rejoins(now);
        }
        for victim in faults.due_crashes(now) {
            faults.server_crashes.fetch_add(1, Ordering::Relaxed);
            let wal = &self.inner.wals[victim % self.inner.wals.len()];
            let dropped = wal.drop_unsynced();
            if dropped > 0 {
                faults
                    .wal_records_lost
                    .fetch_add(dropped as u64, Ordering::Relaxed);
            }
            // Down *before* the failover decision: the victim must fail the
            // liveness check and cannot be chosen as anyone's new primary.
            faults.mark_down(victim, now + faults.plan.crash_mttr);
            let moved = if self.replication_enabled() {
                self.fail_over(victim, now, faults.plan.crash_mttr)
            } else {
                Vec::new()
            };
            if dropped > 0 {
                self.rebuild_regions(victim, &moved);
            }
        }
    }

    /// Draws the per-op fault outcome for an op routed to `server`.  On a
    /// fault the attempt's penalty is charged here and the error returned;
    /// on success any slow-region spike is charged and the op proceeds.
    pub(crate) fn inject_faults(&self, server: RegionServerId) -> StoreResult<()> {
        let Some(faults) = &self.inner.faults else {
            return Ok(());
        };
        match faults.draw(server.0, self.clock.now(), self.cost_model().rpc_round_trip()) {
            FaultDraw::Proceed { extra } => {
                if extra > SimDuration::ZERO {
                    self.charge(extra);
                }
                Ok(())
            }
            FaultDraw::Fail { error, charge } => {
                self.charge(charge);
                Err(error)
            }
        }
    }

    /// Runs `op` under the configured retry policy (or once, when none is
    /// configured — the no-retry path adds a single branch).
    pub(crate) fn with_retry<T>(&self, op: impl FnMut() -> StoreResult<T>) -> StoreResult<T> {
        match &self.inner.retry {
            None => {
                let mut op = op;
                op()
            }
            Some(runtime) => runtime.run(&self.clock, op),
        }
    }

    /// Snapshot of fault-injection and retry counters.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = FaultStats::default();
        if let Some(f) = &self.inner.faults {
            stats.server_crashes = f.server_crashes.load(Ordering::Relaxed);
            stats.wal_records_lost = f.wal_records_lost.load(Ordering::Relaxed);
            stats.timeouts = f.timeouts.load(Ordering::Relaxed);
            stats.transient_errors = f.transients.load(Ordering::Relaxed);
            stats.slowdowns = f.slowdowns.load(Ordering::Relaxed);
            stats.unavailable_rejections = f.unavailable.load(Ordering::Relaxed);
            stats.per_server = f.per_server_stats();
        }
        if let Some(r) = &self.inner.retry {
            stats.retries = r.retries.load(Ordering::Relaxed);
            stats.giveups = r.giveups.load(Ordering::Relaxed);
        }
        stats
    }

    // ----- region replication ----------------------------------------------

    /// True when region replication is active: a factor above 1 and more
    /// than one server to place copies on.
    pub fn replication_enabled(&self) -> bool {
        self.inner.config.replication_factor > 1 && self.inner.config.region_servers > 1
    }

    /// True if `server` is inside a crash window at `now`.
    fn server_down(&self, server: usize, now: SimInstant) -> bool {
        self.inner
            .faults
            .as_ref()
            .is_some_and(|f| f.is_down(server, now))
    }

    /// Deterministic replica placement: the followers of a region whose
    /// primary is `primary` are the next `replication_factor - 1` servers
    /// in ring order.  Placement-order position doubles as the failover
    /// tie-break among equally-caught-up candidates.
    fn replica_followers(&self, primary: usize) -> Vec<usize> {
        let servers = self.inner.config.region_servers.max(1);
        let rf = self.inner.config.replication_factor.min(servers);
        (1..rf).map(|k| (primary + k) % servers).collect()
    }

    /// Registers a region (at creation or split) in the replication
    /// registry.  No-op with replication off; idempotent otherwise.
    fn register_region(&self, id: RegionId, primary: RegionServerId) {
        if !self.replication_enabled() {
            return;
        }
        let followers = self.replica_followers(primary.0);
        let acked: BTreeMap<usize, u64> = followers.iter().map(|&f| (f, 0)).collect();
        self.inner
            .replication
            .lock()
            .regions
            .entry(id.0)
            .or_insert(ReplicaSet {
                primary: primary.0,
                epoch: 0,
                followers,
                shipped: 0,
                acked,
            });
    }

    /// Ships a freshly synced group-commit batch to the followers of the
    /// regions it touched and returns the replication cost to charge on the
    /// batch-closing write.  A live follower that was in sync acknowledges
    /// the record (one ship event); a follower inside a crash window falls
    /// behind and will catch up on rejoin.  Only called with replication on.
    fn ship_synced(&self, newly: &[WalEntry]) -> SimDuration {
        if newly.is_empty() {
            return SimDuration::ZERO;
        }
        let now = self.clock.now();
        let mut ship_events = 0u64;
        let mut registry = self.inner.replication.lock();
        for entry in newly {
            let Some(region) = entry.region else { continue };
            let Some(set) = registry.regions.get_mut(&region) else {
                continue;
            };
            set.shipped += 1;
            let shipped = set.shipped;
            for i in 0..set.followers.len() {
                let follower = set.followers[i];
                if self.server_down(follower, now) {
                    continue;
                }
                let acked = set.acked.entry(follower).or_insert(0);
                if *acked + 1 == shipped {
                    *acked = shipped;
                    ship_events += 1;
                }
            }
        }
        registry.records_shipped += ship_events;
        drop(registry);
        self.cost_model().replication_ship_cost(ship_events)
    }

    /// Fails over every region whose primary is `victim` to its
    /// most-caught-up **live** follower, bumping the region's fencing epoch
    /// so the victim cannot accept stale fenced writes when it comes back
    /// mid-window.  Because shipping is synchronous, any live follower
    /// whose acked position equals `shipped` is fully caught up; candidates
    /// are tried in placement order (the deterministic tie-break).  The
    /// victim is demoted to follower — its synced log copy survives the
    /// crash, so it is immediately in sync and becomes promotable again
    /// after catch-up.  A region with no eligible follower stays on the
    /// victim and stalls for the MTTR window, exactly like RF=1.  Returns
    /// the ids of the regions that moved.
    fn fail_over(&self, victim: usize, now: SimInstant, mttr: SimDuration) -> Vec<u64> {
        let mut promotions: BTreeMap<u64, usize> = BTreeMap::new();
        {
            let mut registry = self.inner.replication.lock();
            let rejoin = (now + mttr).as_nanos();
            let slot = registry.rejoin_at.entry(victim).or_insert(0);
            *slot = (*slot).max(rejoin);
            let mut fired = 0u64;
            for (id, set) in registry.regions.iter_mut() {
                if set.primary != victim {
                    continue;
                }
                let candidate = set.followers.iter().copied().find(|&f| {
                    f != victim
                        && !self.server_down(f, now)
                        && set.acked.get(&f).copied().unwrap_or(0) == set.shipped
                });
                let Some(new_primary) = candidate else { continue };
                set.followers.retain(|&f| f != new_primary);
                set.followers.push(victim);
                set.acked.insert(victim, set.shipped);
                set.acked.remove(&new_primary);
                set.primary = new_primary;
                set.epoch += 1;
                fired += 1;
                promotions.insert(*id, new_primary);
            }
            registry.failovers += fired;
        }
        if promotions.is_empty() {
            return Vec::new();
        }
        // Registry released before touching region locks (lock order).
        for state in self.inner.tables.read().values() {
            let mut regions = state.regions.write();
            for region in regions.iter_mut() {
                if let Some(&new_primary) = promotions.get(&region.id.0) {
                    region.server = RegionServerId(new_primary);
                }
            }
        }
        promotions.keys().copied().collect()
    }

    /// Rejoins every crashed server whose MTTR has elapsed: for each region
    /// it follows, the server replays the shipped log from its last acked
    /// position (charged per record), after which it is in sync and
    /// promotable again.  A region the rejoiner still *owns* (it never
    /// failed over) needs no catch-up — its own log is the authority.
    fn process_rejoins(&self, now: SimInstant) {
        let mut total_lag = 0u64;
        {
            let mut registry = self.inner.replication.lock();
            if registry.rejoin_at.is_empty() {
                return;
            }
            let due: Vec<usize> = registry
                .rejoin_at
                .iter()
                .filter(|(_, &at)| now.as_nanos() >= at)
                .map(|(&server, _)| server)
                .collect();
            for server in due {
                registry.rejoin_at.remove(&server);
                let mut replays = 0u64;
                let mut records = 0u64;
                for set in registry.regions.values_mut() {
                    if set.primary == server || !set.followers.contains(&server) {
                        continue;
                    }
                    let acked = set.acked.entry(server).or_insert(0);
                    let lag = set.shipped - *acked;
                    if lag > 0 {
                        *acked = set.shipped;
                        replays += 1;
                        records += lag;
                    }
                }
                registry.catchup_replays += replays;
                registry.catchup_records += records;
                total_lag += records;
            }
        }
        if total_lag > 0 {
            self.charge(self.cost_model().catchup_replay_cost(total_lag));
        }
    }

    /// The region owning `key` in `table` and that region's current fencing
    /// epoch.  A metadata read (like [`Cluster::table_stats`]): charges
    /// nothing and moves no counter.  Epoch is always 0 with replication
    /// off.
    // lint-allow(cost-accounting): epoch metadata probe (fencing tests), no data movement to charge
    pub fn region_epoch_for(&self, table: &str, key: &[u8]) -> StoreResult<(u64, u64)> {
        let state = self.table(table)?;
        let regions = state.regions.read();
        let idx = Self::region_index_for(&regions, key);
        let id = regions[idx].id.0;
        drop(regions);
        Ok((id, self.current_epoch(id)))
    }

    /// Current fencing epoch of a region (0 with replication off or for an
    /// untracked region).
    // lint-allow(cost-accounting): epoch metadata read, no data movement to charge
    pub fn current_epoch(&self, region: u64) -> u64 {
        if !self.replication_enabled() {
            return 0;
        }
        self.inner
            .replication
            .lock()
            .regions
            .get(&region)
            .map(|set| set.epoch)
            .unwrap_or(0)
    }

    /// Fenced write: like [`Cluster::put`], but the caller presents the
    /// region epoch it captured (via [`Cluster::region_epoch_for`]) when it
    /// took ownership of the key.  If the region failed over since — its
    /// epoch advanced — the write is refused with
    /// [`StoreError::StaleRegionEpoch`] after charging one RPC round trip:
    /// this is how a zombie ex-primary's writes are fenced off.  The error
    /// is **not** retryable; the caller must re-read the epoch first.
    pub fn put_fenced(&self, table: &str, put: Put, epoch: u64) -> StoreResult<()> {
        self.with_retry(|| self.put_once(table, &put, Some(epoch)))
    }

    /// Snapshot of the replication registry's counters.
    // lint-allow(cost-accounting): metrics snapshot, not a client op
    pub fn replication_stats(&self) -> ReplicationStats {
        let mut stats = ReplicationStats {
            replication_factor: self.inner.config.replication_factor.max(1),
            ..ReplicationStats::default()
        };
        if !self.replication_enabled() {
            return stats;
        }
        let registry = self.inner.replication.lock();
        stats.replicated_regions = registry.regions.len();
        stats.records_shipped = registry.records_shipped;
        stats.failovers = registry.failovers;
        stats.catchup_replays = registry.catchup_replays;
        stats.catchup_records = registry.catchup_records;
        stats.replica_lag = registry
            .regions
            .values()
            .map(|set| {
                set.followers
                    .iter()
                    .map(|f| set.shipped - set.acked.get(f).copied().unwrap_or(0))
                    .sum::<u64>()
            })
            .sum();
        stats
    }

    /// After a cluster-wide [`Cluster::recover`], re-derives routing from
    /// the replication registry: failover decisions (and fencing epochs)
    /// live in the registry — the simulated ZooKeeper layer — so they
    /// survive the baseline restore, while the restored region snapshots
    /// may predate them.  Registry entries for regions that no longer exist
    /// (drops) are pruned; live regions missing an entry (created since the
    /// registry was last consistent) are registered.
    fn realign_replication(&self) {
        let tables = self.inner.tables.read();
        // (region id, current server) of every live region.
        let mut live: BTreeMap<u64, usize> = BTreeMap::new();
        for state in tables.values() {
            for region in state.regions.read().iter() {
                live.insert(region.id.0, region.server.0);
            }
        }
        let mut routing: BTreeMap<u64, usize> = BTreeMap::new();
        {
            let mut registry = self.inner.replication.lock();
            registry.regions.retain(|id, _| live.contains_key(id));
            for (&id, &server) in &live {
                match registry.regions.get(&id) {
                    Some(set) => {
                        if set.primary != server {
                            routing.insert(id, set.primary);
                        }
                    }
                    None => {
                        let followers = self.replica_followers(server);
                        let acked: BTreeMap<usize, u64> =
                            followers.iter().map(|&f| (f, 0)).collect();
                        registry.regions.insert(
                            id,
                            ReplicaSet {
                                primary: server,
                                epoch: 0,
                                followers,
                                shipped: 0,
                                acked,
                            },
                        );
                    }
                }
            }
        }
        if routing.is_empty() {
            return;
        }
        for state in tables.values() {
            let mut regions = state.regions.write();
            for region in regions.iter_mut() {
                if let Some(&primary) = routing.get(&region.id.0) {
                    region.server = RegionServerId(primary);
                }
            }
        }
    }

    // ----- table administration --------------------------------------------

    /// Creates a table; fails if it already exists or declares no families.
    pub fn create_table(&self, schema: TableSchema) -> StoreResult<()> {
        assert!(
            !schema.families.is_empty(),
            "a table must declare at least one column family"
        );
        let mut tables = self.inner.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(StoreError::TableExists(schema.name));
        }
        let id = self.next_region_id();
        let server = self.pick_server();
        let region = Region::new(id, server, Vec::new(), Vec::new());
        tables.insert(
            schema.name.clone(),
            Arc::new(TableState {
                schema,
                regions: RwLock::new(vec![region]),
            }),
        );
        self.register_region(id, server);
        Ok(())
    }

    /// Drops a table and all its data (including its checkpoint snapshot).
    pub fn drop_table(&self, name: &str) -> StoreResult<()> {
        self.inner.baseline.write().remove(name);
        self.inner
            .tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::TableNotFound(name.to_string()))
    }

    /// True if the named table exists.
    pub fn table_exists(&self, name: &str) -> bool {
        self.inner.tables.read().contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn list_tables(&self) -> Vec<String> {
        self.inner.tables.read().keys().cloned().collect()
    }

    /// The schema of a table.
    pub fn table_schema(&self, name: &str) -> StoreResult<TableSchema> {
        Ok(self.table(name)?.schema.clone())
    }

    pub(crate) fn table(&self, name: &str) -> StoreResult<Arc<TableState>> {
        self.inner
            .tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::TableNotFound(name.to_string()))
    }

    fn wal_for(&self, server: RegionServerId) -> &WriteAheadLog {
        &self.inner.wals[server.0 % self.inner.wals.len()]
    }

    /// The write-ahead log of one region server (for tests and recovery
    /// experiments).
    pub fn wal(&self, server: usize) -> &WriteAheadLog {
        &self.inner.wals[server % self.inner.wals.len()]
    }

    fn region_index_for(regions: &[Region], key: &[u8]) -> usize {
        regions
            .iter()
            .position(|r| r.contains(key))
            .unwrap_or(regions.len().saturating_sub(1))
    }

    fn maybe_split(&self, table: &TableState, regions: &mut Vec<Region>, idx: usize) {
        if regions[idx].byte_size() <= self.inner.config.region_split_bytes {
            return;
        }
        let new_id = self.next_region_id();
        let new_server = self.pick_server();
        if let Some(upper) = regions[idx].split(new_id, new_server) {
            regions.insert(idx + 1, upper);
            self.register_region(new_id, new_server);
        }
        let _ = table;
    }

    /// Appends `op` to `server`'s WAL and applies the group-commit rule:
    /// once the unsynced batch reaches `wal_sync_interval` records the log
    /// syncs and the write pays its full cost; otherwise the sync is
    /// deferred and this write's charge drops by `effective_wal_sync` (the
    /// batch-closing write pays it).  Charges therefore sum to exactly
    /// `interval-1` deferred syncs fewer than interval=1 — and with the
    /// default interval of 1 every write syncs and charges the same full
    /// cost as before group commit existed.  With replication on, the
    /// batch-closing write additionally ships the newly synced records to
    /// their regions' followers and pays the shipping cost.  Returns the
    /// cost to charge.
    fn log_write(
        &self,
        server: RegionServerId,
        table: &str,
        region: RegionId,
        op: WalOp,
        cost: SimDuration,
    ) -> SimDuration {
        let wal = self.wal_for(server);
        wal.append_region(table, region.0, op);
        let interval = self.inner.config.wal_sync_interval.max(1);
        if wal.unsynced_len() >= interval {
            if self.replication_enabled() {
                let newly = wal.sync_take_new();
                cost + self.ship_synced(&newly)
            } else {
                wal.sync();
                cost
            }
        } else {
            cost.saturating_sub(self.cost_model().effective_wal_sync())
        }
    }

    // ----- data operations -------------------------------------------------

    /// Writes one row.  Charges one RPC + server work + WAL sync (deferred
    /// under group commit).  Retries injected faults per the configured
    /// policy.
    pub fn put(&self, table: &str, put: Put) -> StoreResult<()> {
        self.with_retry(|| self.put_once(table, &put, None))
    }

    fn put_once(&self, table: &str, put: &Put, fence: Option<u64>) -> StoreResult<()> {
        let state = self.table(table)?;
        self.precheck()?;
        let cost = self.cost_model().put_cost(put.cell_count());
        let mut regions = state.regions.write();
        let idx = Self::region_index_for(&regions, &put.row);
        let server = regions[idx].server;
        self.inject_faults(server)?;
        if let Some(presented) = fence {
            // Zombie fencing: the epoch check happens server-side after
            // routing, so a stale writer burns a round trip and is refused.
            let region = regions[idx].id.0;
            let current = self.current_epoch(region);
            if presented != current {
                drop(regions);
                self.charge(self.cost_model().rpc_round_trip());
                return Err(StoreError::StaleRegionEpoch {
                    region,
                    current,
                    presented,
                });
            }
        }
        // Timestamp is drawn under the region lock so that versions written
        // to one row are ordered consistently with lock acquisition order
        // (and only after fault injection, so failed attempts consume none).
        let ts = self.next_timestamp();
        regions[idx].put(&state.schema, put, ts)?;
        let charge = self.log_write(
            server,
            table,
            regions[idx].id,
            WalOp::Put {
                row: put.row.clone(),
                cells: put.cells.clone(),
                timestamp: put.timestamp.unwrap_or(ts),
            },
            cost,
        );
        self.maybe_split(&state, &mut regions, idx);
        drop(regions);
        self.charge(charge);
        AtomicOpCounters::bump(&self.inner.counters.puts, 1);
        Ok(())
    }

    /// Writes one row and returns its **before-image**: the row's prior
    /// contents read under the same region write-lock, atomically with the
    /// mutation.  Charges exactly like [`Cluster::put`] — the read shares
    /// the write's RPC and row positioning (a server-side read-modify-write),
    /// so no extra round trip is modeled and only the `puts` counter moves.
    pub fn put_fetch(&self, table: &str, put: Put) -> StoreResult<Option<ResultRow>> {
        self.with_retry(|| self.put_fetch_once(table, &put))
    }

    fn put_fetch_once(&self, table: &str, put: &Put) -> StoreResult<Option<ResultRow>> {
        let state = self.table(table)?;
        self.precheck()?;
        let cost = self.cost_model().put_cost(put.cell_count());
        let mut regions = state.regions.write();
        let idx = Self::region_index_for(&regions, &put.row);
        let server = regions[idx].server;
        self.inject_faults(server)?;
        let ts = self.next_timestamp();
        let before = regions[idx].get(&Get::new(put.row.clone()));
        regions[idx].put(&state.schema, put, ts)?;
        let charge = self.log_write(
            server,
            table,
            regions[idx].id,
            WalOp::Put {
                row: put.row.clone(),
                cells: put.cells.clone(),
                timestamp: put.timestamp.unwrap_or(ts),
            },
            cost,
        );
        self.maybe_split(&state, &mut regions, idx);
        drop(regions);
        self.charge(charge);
        AtomicOpCounters::bump(&self.inner.counters.puts, 1);
        Ok(before)
    }

    /// Bulk-loads rows without charging simulated cost or writing the WAL.
    ///
    /// This models the paper's offline database-population phase (which is
    /// followed by a major compaction and is not part of any measured
    /// response time).  Bulk-loaded rows become **durable at the next
    /// [`Cluster::checkpoint`]**; a crash before one loses them, exactly
    /// like un-flushed memstore contents with no log.  Fault-injection
    /// harnesses therefore checkpoint once population finishes.
    // lint-allow(cost-accounting): offline population step; the paper loads before measuring
    pub fn bulk_load(&self, table: &str, puts: impl IntoIterator<Item = Put>) -> StoreResult<usize> {
        if self.inner.crashed.load(Ordering::Acquire) {
            return Err(StoreError::ClusterDown);
        }
        let state = self.table(table)?;
        let mut regions = state.regions.write();
        let mut loaded = 0;
        for put in puts {
            let ts = self.next_timestamp();
            let idx = Self::region_index_for(&regions, &put.row);
            regions[idx].put(&state.schema, &put, ts)?;
            self.maybe_split(&state, &mut regions, idx);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Reads one row.  Charges one RPC + server work.
    pub fn get(&self, table: &str, get: Get) -> StoreResult<Option<ResultRow>> {
        self.with_retry(|| self.get_once(table, &get))
    }

    fn get_once(&self, table: &str, get: &Get) -> StoreResult<Option<ResultRow>> {
        let state = self.table(table)?;
        self.precheck()?;
        let regions = state.regions.read();
        let idx = Self::region_index_for(&regions, &get.row);
        self.inject_faults(regions[idx].server)?;
        self.charge(self.cost_model().get_cost());
        AtomicOpCounters::bump(&self.inner.counters.gets, 1);
        Ok(regions[idx].get(get))
    }

    /// Deletes a row or columns of a row.  Charges one RPC + WAL sync.
    pub fn delete(&self, table: &str, delete: Delete) -> StoreResult<bool> {
        self.with_retry(|| self.delete_once(table, &delete).map(|(removed, _)| removed))
    }

    /// Deletes a row and returns its **before-image**, read under the same
    /// region write-lock.  Charges exactly like [`Cluster::delete`]; only
    /// the `deletes` counter moves.  Returns `None` when the row was absent.
    pub fn delete_fetch(&self, table: &str, delete: Delete) -> StoreResult<Option<ResultRow>> {
        self.with_retry(|| self.delete_once(table, &delete).map(|(_, before)| before))
    }

    fn delete_once(
        &self,
        table: &str,
        delete: &Delete,
    ) -> StoreResult<(bool, Option<ResultRow>)> {
        let state = self.table(table)?;
        self.precheck()?;
        let cost = self.cost_model().delete_cost();
        let mut regions = state.regions.write();
        let idx = Self::region_index_for(&regions, &delete.row);
        let server = regions[idx].server;
        self.inject_faults(server)?;
        // Deletes draw a timestamp too: replay needs a globally-ordered
        // stamp to sequence them against puts from other server logs.
        let ts = self.next_timestamp();
        let before = regions[idx].get(&Get::new(delete.row.clone()));
        let removed = regions[idx].delete(delete)?;
        let charge = self.log_write(
            server,
            table,
            regions[idx].id,
            WalOp::Delete {
                row: delete.row.clone(),
                scope: delete.scope.clone(),
                timestamp: ts,
            },
            cost,
        );
        drop(regions);
        self.charge(charge);
        AtomicOpCounters::bump(&self.inner.counters.deletes, 1);
        Ok((removed, before))
    }

    /// Atomically adds to a counter cell.  Charges like a put.
    pub fn increment(&self, table: &str, inc: Increment) -> StoreResult<i64> {
        self.with_retry(|| self.increment_once(table, &inc))
    }

    fn increment_once(&self, table: &str, inc: &Increment) -> StoreResult<i64> {
        let state = self.table(table)?;
        self.precheck()?;
        let cost = self.cost_model().put_cost(1);
        let mut regions = state.regions.write();
        let idx = Self::region_index_for(&regions, &inc.row);
        let server = regions[idx].server;
        self.inject_faults(server)?;
        let ts = self.next_timestamp();
        let value = regions[idx].increment(&state.schema, inc, ts)?;
        let charge = self.log_write(
            server,
            table,
            regions[idx].id,
            WalOp::Increment {
                row: inc.row.clone(),
                family: inc.family.clone(),
                qualifier: inc.qualifier.clone(),
                amount: inc.amount,
                timestamp: ts,
            },
            cost,
        );
        drop(regions);
        self.charge(charge);
        AtomicOpCounters::bump(&self.inner.counters.increments, 1);
        Ok(value)
    }

    /// Atomic compare-and-set.  Charges one RPC + server work + WAL sync.
    pub fn check_and_put(&self, table: &str, cap: CheckAndPut) -> StoreResult<bool> {
        self.with_retry(|| self.check_and_put_once(table, &cap))
    }

    fn check_and_put_once(&self, table: &str, cap: &CheckAndPut) -> StoreResult<bool> {
        let state = self.table(table)?;
        self.precheck()?;
        let cost = self.cost_model().check_and_put_cost();
        let mut regions = state.regions.write();
        let idx = Self::region_index_for(&regions, &cap.row);
        let server = regions[idx].server;
        self.inject_faults(server)?;
        let ts = self.next_timestamp();
        let applied = regions[idx].check_and_put(
            &state.schema,
            &cap.family,
            &cap.qualifier,
            &cap.expect,
            &cap.put,
            ts,
        )?;
        let charge = if applied {
            self.log_write(
                server,
                table,
                regions[idx].id,
                WalOp::Put {
                    row: cap.put.row.clone(),
                    cells: cap.put.cells.clone(),
                    timestamp: cap.put.timestamp.unwrap_or(ts),
                },
                cost,
            )
        } else {
            // A failed condition still pays the full RPC (the server did the
            // read-compare and synced nothing new).
            cost
        };
        drop(regions);
        self.charge(charge);
        AtomicOpCounters::bump(&self.inner.counters.check_and_puts, 1);
        Ok(applied)
    }

    /// Scans rows in key order across all regions intersecting the range.
    /// Charges scanner-open per region plus per-batch/per-row/per-byte
    /// streaming costs.
    ///
    /// This is a thin collect wrapper over [`Cluster::scan_stream`]; callers
    /// that do not need the whole result materialized should pull the cursor
    /// directly.  Like an HBase scanner, the stream is row-atomic but pages
    /// through the table without holding a table-wide lock.  Mid-scan faults
    /// that exhaust the retry policy surface here as the cursor's error.
    pub fn scan(&self, table: &str, scan: Scan) -> StoreResult<Vec<ResultRow>> {
        let mut cursor = self.scan_stream(table, scan)?;
        let rows: Vec<ResultRow> = cursor.by_ref().collect();
        match cursor.take_error() {
            Some(err) => Err(err),
            None => Ok(rows),
        }
    }

    /// Number of rows currently stored in a table.
    // lint-allow(cost-accounting): planner statistics read, uncharged like table_stats
    pub fn row_count(&self, table: &str) -> StoreResult<u64> {
        let state = self.table(table)?;
        let regions = state.regions.read();
        Ok(regions.iter().map(|r| r.row_count() as u64).sum())
    }

    /// Storage statistics (row / byte / region counts) for one table, or
    /// `None` when the table does not exist.  This reads region metadata
    /// only — no simulated cost is charged and no operation counter moves —
    /// so planners can consult it freely (e.g. the query optimizer's
    /// cardinality estimates) without perturbing measured figures.
    // lint-allow(cost-accounting): documented precedent: planner statistics are free
    pub fn table_stats(&self, table: &str) -> Option<crate::metrics::TableMetrics> {
        let state = self.table(table).ok()?;
        let regions = state.regions.read();
        Some(crate::metrics::TableMetrics {
            rows: regions.iter().map(|r| r.row_count() as u64).sum(),
            bytes: regions.iter().map(|r| r.byte_size() as u64).sum(),
            regions: regions.len(),
        })
    }

    /// Major-compacts one table (drops excess cell versions, reclaims space).
    // lint-allow(cost-accounting): offline maintenance between runs, outside measured ops
    pub fn major_compact(&self, table: &str) -> StoreResult<()> {
        let state = self.table(table)?;
        let mut regions = state.regions.write();
        for region in regions.iter_mut() {
            region.major_compact(&state.schema);
        }
        Ok(())
    }

    /// Major-compacts every table, as the paper does after each database
    /// population.
    pub fn major_compact_all(&self) {
        for table in self.list_tables() {
            let _ = self.major_compact(&table);
        }
    }

    // ----- crash / recovery ------------------------------------------------

    /// Crashes the whole cluster: every server's acked-but-unsynced WAL tail
    /// is lost, all volatile region state (memstores) is wiped, and every op
    /// fails with [`StoreError::ClusterDown`] until [`Cluster::recover`].
    /// Table metadata (schemas, region boundaries) survives — it lives in
    /// the simulated ZooKeeper/HDFS layer, as does the replication
    /// registry.  Returns what was lost, per server.
    // lint-allow(cost-accounting): fault-injection hook, not a client op
    pub fn crash(&self) -> CrashReport {
        self.inner.crashed.store(true, Ordering::Release);
        let lost_per_server: Vec<usize> = self
            .inner
            .wals
            .iter()
            .map(WriteAheadLog::drop_unsynced)
            .collect();
        for state in self.inner.tables.read().values() {
            let mut regions = state.regions.write();
            for region in regions.iter_mut() {
                region.clear_rows();
            }
        }
        CrashReport { lost_per_server }
    }

    /// True between [`Cluster::crash`] and [`Cluster::recover`].
    pub fn is_crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::Acquire)
    }

    /// Recovers a crashed cluster to the durable state: the last
    /// [`Cluster::checkpoint`] snapshot plus every *synced* WAL record,
    /// replayed across all server logs in global timestamp order.  Charges
    /// `CostModel::recovery_cost` for the replay, clears the crashed flag
    /// and finishes with a fresh checkpoint (so the replayed WAL prefix is
    /// truncated rather than replayed again next time).
    pub fn recover(&self) -> RecoveryReport {
        let tables = self.inner.tables.read();
        {
            let baseline = self.inner.baseline.read();
            for (name, state) in tables.iter() {
                let mut regions = state.regions.write();
                match baseline.get(name) {
                    Some(snapshot) => *regions = snapshot.clone(),
                    None => {
                        for region in regions.iter_mut() {
                            region.clear_rows();
                        }
                    }
                }
            }
        }
        // Mutation timestamps are globally unique and monotone, so sorting
        // the synced records of all server logs by timestamp reconstructs
        // the cluster-wide mutation order.
        let mut entries = self.synced_physical_entries();
        entries.sort_by_key(|e| e.op.timestamp());
        let mut replayed = 0u64;
        for entry in &entries {
            if let Some(state) = tables.get(&entry.table) {
                let mut regions = state.regions.write();
                Self::apply_wal_entry(&state.schema, &mut regions, entry);
                replayed += 1;
            }
        }
        let restored_tables = tables.len();
        drop(tables);
        self.inner.crashed.store(false, Ordering::Release);
        let recovery_sim = self.cost_model().recovery_cost(replayed);
        self.charge(recovery_sim);
        if self.replication_enabled() {
            self.realign_replication();
        }
        self.checkpoint();
        RecoveryReport {
            replayed_entries: replayed,
            restored_tables,
            recovery_sim,
        }
    }

    /// Makes the current state durable: snapshots every table's regions as
    /// the new recovery baseline, then syncs and truncates every WAL (the
    /// snapshot covers all of it — the memstore-flush that lets HBase
    /// archive logs).  Charges one `effective_wal_sync` per server log that
    /// had an unsynced tail (the forced flush); a cluster whose logs are
    /// clean checkpoints for free.  Call only at quiescent points: the
    /// snapshot is per-table atomic, not cluster-atomic.  Returns the number
    /// of WAL records truncated.
    pub fn checkpoint(&self) -> u64 {
        {
            let tables = self.inner.tables.read();
            let mut baseline = self.inner.baseline.write();
            baseline.clear();
            for (name, state) in tables.iter() {
                baseline.insert(name.clone(), state.regions.read().clone());
            }
        }
        let mut truncated = 0u64;
        let mut flush_cost = SimDuration::ZERO;
        for wal in &self.inner.wals {
            if wal.unsynced_len() > 0 {
                flush_cost += self.cost_model().effective_wal_sync();
                wal.sync();
            }
            truncated += wal.len() as u64;
            wal.truncate_before(wal.next_sequence());
        }
        if flush_cost > SimDuration::ZERO {
            self.charge(flush_cost);
        }
        if self.replication_enabled() {
            // A checkpoint is a cluster-wide durability point: the baseline
            // now covers everything shipped, so every replica — including a
            // currently-down follower, which would rebuild from the same
            // baseline on restart — is in sync.  Registry bookkeeping only;
            // no extra charge (the flush above already paid).  Promotion
            // still requires liveness, so marking a down follower in sync
            // cannot hand it a region.
            let mut registry = self.inner.replication.lock();
            for set in registry.regions.values_mut() {
                let shipped = set.shipped;
                for acked in set.acked.values_mut() {
                    *acked = shipped;
                }
            }
        }
        truncated
    }

    /// All synced physical (non-`Logical`) records across every server log.
    fn synced_physical_entries(&self) -> Vec<WalEntry> {
        let mut entries = Vec::new();
        for wal in &self.inner.wals {
            entries.extend(
                wal.entries()
                    .into_iter()
                    .filter(|e| e.synced && e.op.timestamp().is_some()),
            );
        }
        entries
    }

    /// Row key a physical WAL record routes by.
    fn wal_row_key(op: &WalOp) -> Option<&[u8]> {
        match op {
            WalOp::Put { row, .. }
            | WalOp::Delete { row, .. }
            | WalOp::Increment { row, .. } => Some(row),
            WalOp::Logical { .. } => None,
        }
    }

    /// Re-applies one WAL record to the owning region at its original
    /// timestamp.  Cannot fail: the mutation was validated when it was first
    /// applied and replay repeats it in the original global order.
    fn apply_wal_entry(schema: &TableSchema, regions: &mut [Region], entry: &WalEntry) {
        match &entry.op {
            WalOp::Put { row, cells, timestamp } => {
                let idx = Self::region_index_for(regions, row);
                let put = Put {
                    row: row.clone(),
                    cells: cells.clone(),
                    timestamp: Some(*timestamp),
                };
                let _ = regions[idx].put(schema, &put, *timestamp);
            }
            WalOp::Delete { row, scope, .. } => {
                let idx = Self::region_index_for(regions, row);
                let _ = regions[idx].delete(&Delete {
                    row: row.clone(),
                    scope: scope.clone(),
                });
            }
            WalOp::Increment {
                row,
                family,
                qualifier,
                amount,
                timestamp,
            } => {
                let idx = Self::region_index_for(regions, row);
                let inc = Increment {
                    row: row.clone(),
                    family: family.clone(),
                    qualifier: qualifier.clone(),
                    amount: *amount,
                };
                let _ = regions[idx].increment(schema, &inc, *timestamp);
            }
            WalOp::Logical { .. } => {}
        }
    }

    /// Rebuilds the regions a server crash dirtied, from durable state
    /// (checkpoint baseline + synced records from *all* logs — a key's
    /// mutations may sit in another server's log if its region split and
    /// moved since the checkpoint).  Affected regions are those still
    /// hosted on the victim plus those in `moved` (regions that just failed
    /// over: their memstores hold the victim's lost acked-unsynced writes,
    /// and the promoted follower's copy is exactly baseline + synced log).
    /// Regions the new primary *already* hosted are untouched — their
    /// acked-unsynced writes are healthy and must survive.
    fn rebuild_regions(&self, victim: usize, moved: &[u64]) {
        let affected =
            |region: &Region| region.server.0 == victim || moved.contains(&region.id.0);
        let tables = self.inner.tables.read();
        let baseline = self.inner.baseline.read();
        let mut entries = self.synced_physical_entries();
        entries.sort_by_key(|e| e.op.timestamp());
        for (name, state) in tables.iter() {
            let mut regions = state.regions.write();
            if !regions.iter().any(affected) {
                continue;
            }
            for region in regions.iter_mut() {
                if affected(region) {
                    region.clear_rows();
                }
            }
            if let Some(snapshot) = baseline.get(name) {
                for snap_region in snapshot {
                    for (key, row) in snap_region.rows() {
                        let idx = Self::region_index_for(&regions, key);
                        if affected(&regions[idx]) {
                            let row = row.clone();
                            regions[idx].insert_row(key.clone(), row);
                        }
                    }
                }
            }
            for entry in entries.iter().filter(|e| e.table == *name) {
                let Some(key) = Self::wal_row_key(&entry.op) else {
                    continue;
                };
                let idx = Self::region_index_for(&regions, key);
                if affected(&regions[idx]) {
                    Self::apply_wal_entry(&state.schema, &mut regions, entry);
                }
            }
            for region in regions.iter_mut() {
                if affected(region) {
                    region.recompute_bytes();
                }
            }
        }
    }

    /// Snapshot of operation counters and per-table storage statistics.
    // lint-allow(cost-accounting): metrics snapshot, not a client op
    pub fn metrics(&self) -> ClusterMetrics {
        let mut metrics = ClusterMetrics {
            ops: self.inner.counters.snapshot(),
            tables: BTreeMap::new(),
        };
        for (name, state) in self.inner.tables.read().iter() {
            let regions = state.regions.read();
            metrics.tables.insert(
                name.clone(),
                TableMetrics {
                    rows: regions.iter().map(|r| r.row_count() as u64).sum(),
                    bytes: regions.iter().map(|r| r.byte_size() as u64).sum(),
                    regions: regions.len(),
                },
            );
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Expectation;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn orders_schema() -> TableSchema {
        TableSchema::new("orders").with_family("cf")
    }

    #[test]
    fn create_and_drop_tables() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        assert!(c.table_exists("orders"));
        assert!(matches!(
            c.create_table(orders_schema()),
            Err(StoreError::TableExists(_))
        ));
        c.drop_table("orders").unwrap();
        assert!(!c.table_exists("orders"));
        assert!(matches!(
            c.drop_table("orders"),
            Err(StoreError::TableNotFound(_))
        ));
    }

    #[test]
    fn put_get_delete_round_trip_and_costs() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        let start = c.clock().now();
        c.put("orders", Put::new("o1").with("cf", "total", "99")).unwrap();
        let after_put = c.clock().now();
        assert!(after_put > start, "puts must charge simulated time");
        let row = c.get("orders", Get::new("o1")).unwrap().unwrap();
        assert_eq!(row.value_str("cf", "total").unwrap(), "99");
        assert!(c.delete("orders", Delete::row("o1")).unwrap());
        assert!(c.get("orders", Get::new("o1")).unwrap().is_none());
        let m = c.metrics();
        assert_eq!(m.ops.puts, 1);
        assert_eq!(m.ops.gets, 2);
        assert_eq!(m.ops.deletes, 1);
    }

    #[test]
    fn fetch_variants_return_before_images_at_plain_write_cost() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        assert!(c
            .put_fetch("orders", Put::new("o1").with("cf", "v", "1"))
            .unwrap()
            .is_none());
        let before = c
            .put_fetch("orders", Put::new("o1").with("cf", "v", "2"))
            .unwrap()
            .unwrap();
        assert_eq!(before.value_str("cf", "v").unwrap(), "1");
        let (_, put_cost) =
            c.clock().measure(|| c.put("orders", Put::new("o2").with("cf", "v", "1")).unwrap());
        let (_, fetch_cost) = c.clock().measure(|| {
            c.put_fetch("orders", Put::new("o3").with("cf", "v", "1")).unwrap();
        });
        assert_eq!(put_cost, fetch_cost, "before-image read rides the write RPC");
        let gets_before = c.metrics().ops.gets;
        let removed = c.delete_fetch("orders", Delete::row("o1")).unwrap().unwrap();
        assert_eq!(removed.value_str("cf", "v").unwrap(), "2");
        assert!(c.delete_fetch("orders", Delete::row("o1")).unwrap().is_none());
        assert_eq!(c.metrics().ops.gets, gets_before, "no get counter movement");
    }

    #[test]
    fn unknown_table_is_an_error() {
        let c = cluster();
        assert!(matches!(
            c.get("nope", Get::new("r")),
            Err(StoreError::TableNotFound(_))
        ));
    }

    #[test]
    fn scan_spans_region_splits() {
        let config = ClusterConfig {
            region_split_bytes: 2_000,
            ..ClusterConfig::default()
        };
        let c = Cluster::new(config);
        c.create_table(orders_schema()).unwrap();
        for i in 0..200 {
            c.bulk_load(
                "orders",
                [Put::new(format!("o{i:04}")).with("cf", "v", vec![b'x'; 64])],
            )
            .unwrap();
        }
        let metrics = c.metrics();
        assert!(metrics.tables["orders"].regions > 1, "table should have split");
        let rows = c.scan("orders", Scan::all()).unwrap();
        assert_eq!(rows.len(), 200);
        // Rows come back in global key order even across regions.
        let keys: Vec<String> = rows.iter().map(ResultRow::key_str).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let ranged = c.scan("orders", Scan::range("o0010", "o0020")).unwrap();
        assert_eq!(ranged.len(), 10);
    }

    #[test]
    fn bulk_load_is_free_but_accounted_in_storage() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        let before = c.clock().now();
        c.bulk_load(
            "orders",
            (0..50).map(|i| Put::new(format!("o{i}")).with("cf", "v", "1")),
        )
        .unwrap();
        assert_eq!(c.clock().now(), before, "bulk load must not charge time");
        assert_eq!(c.row_count("orders").unwrap(), 50);
        assert!(c.metrics().tables["orders"].bytes > 0);
    }

    #[test]
    fn check_and_put_behaves_like_a_lock() {
        let c = cluster();
        c.create_table(TableSchema::new("locks").with_family("l")).unwrap();
        let acquire = |c: &Cluster| {
            c.check_and_put(
                "locks",
                CheckAndPut::new(
                    "root#42",
                    "l",
                    "held",
                    Expectation::Absent,
                    Put::new("root#42").with("l", "held", "1"),
                ),
            )
            .unwrap()
        };
        assert!(acquire(&c));
        assert!(!acquire(&c));
        // Release.
        assert!(c
            .check_and_put(
                "locks",
                CheckAndPut::new(
                    "root#42",
                    "l",
                    "held",
                    Expectation::Equals(b"1".to_vec()),
                    Put::new("root#42").with("l", "held", ""),
                ),
            )
            .unwrap());
    }

    #[test]
    fn increments_are_atomic_across_threads() {
        let c = cluster();
        c.create_table(TableSchema::new("counters").with_family("cf")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.increment("counters", Increment::new("hits", "cf", "n", 1)).unwrap();
                    }
                });
            }
        });
        let row = c.get("counters", Get::new("hits")).unwrap().unwrap();
        let value = i64::from_be_bytes(row.value("cf", "n").unwrap().try_into().unwrap());
        assert_eq!(value, 400);
    }

    #[test]
    fn major_compaction_reclaims_old_versions() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        for _ in 0..10 {
            c.put("orders", Put::new("o1").with("cf", "v", vec![b'x'; 500])).unwrap();
        }
        let before = c.metrics().tables["orders"].bytes;
        c.major_compact_all();
        let after = c.metrics().tables["orders"].bytes;
        assert!(after < before);
    }

    #[test]
    fn wal_records_mutations() {
        let c = Cluster::new(ClusterConfig {
            region_servers: 1,
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        c.put("orders", Put::new("o1").with("cf", "v", "1")).unwrap();
        c.delete("orders", Delete::row("o1")).unwrap();
        let wal = c.wal(0);
        assert_eq!(wal.len(), 2);
        assert!(wal.unsynced().is_empty());
        // Entries carry replayable payloads with globally-ordered stamps.
        let entries = wal.entries();
        assert!(matches!(&entries[0].op, WalOp::Put { cells, .. } if cells.len() == 1));
        assert!(entries[0].op.timestamp() < entries[1].op.timestamp());
    }

    #[test]
    fn scan_cost_grows_with_result_size() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        c.bulk_load(
            "orders",
            (0..2_000).map(|i| Put::new(format!("o{i:05}")).with("cf", "v", vec![b'x'; 64])),
        )
        .unwrap();
        let (_, small) = c.clock().measure(|| c.scan("orders", Scan::all().with_limit(10)).unwrap());
        let (_, large) = c.clock().measure(|| c.scan("orders", Scan::all()).unwrap());
        assert!(large > small * 2, "large={large} small={small}");
    }

    #[test]
    fn group_commit_defers_sync_cost_to_the_batch_closing_write() {
        let write_n = |interval: usize, n: usize| {
            let c = Cluster::new(ClusterConfig {
                region_servers: 1,
                wal_sync_interval: interval,
                ..ClusterConfig::default()
            });
            c.create_table(orders_schema()).unwrap();
            let (_, cost) = c.clock().measure(|| {
                for i in 0..n {
                    c.put("orders", Put::new(format!("o{i}")).with("cf", "v", "1")).unwrap();
                }
            });
            (c, cost)
        };
        let (c1, synced) = write_n(1, 6);
        let (c3, grouped) = write_n(3, 6);
        let sync = c1.cost_model().effective_wal_sync();
        // Interval 3 over 6 writes: 2 syncs instead of 6 → exactly 4 sync
        // costs cheaper, everything else identical.
        assert_eq!(synced, grouped + sync * 4);
        assert_eq!(c1.wal(0).unsynced_len(), 0);
        assert_eq!(c3.wal(0).unsynced_len(), 0);
        // A 7th write under interval 3 leaves an unsynced (vulnerable) tail.
        c3.put("orders", Put::new("o7").with("cf", "v", "1")).unwrap();
        assert_eq!(c3.wal(0).unsynced_len(), 1);
    }

    #[test]
    fn crash_loses_unsynced_tail_and_recover_replays_synced_state() {
        let c = Cluster::new(ClusterConfig {
            region_servers: 2,
            wal_sync_interval: 4,
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        for i in 0..18 {
            c.put("orders", Put::new(format!("o{i:02}")).with("cf", "v", format!("{i}"))).unwrap();
        }
        // Some writes are acked but not yet synced.
        let unsynced: usize = (0..2).map(|s| c.wal(s).unsynced_len()).sum();
        assert!(unsynced > 0, "interval 4 must leave an unsynced tail");
        let synced_rows: Vec<String> = {
            let mut rows = Vec::new();
            for s in 0..2 {
                for e in c.wal(s).entries() {
                    if e.synced {
                        if let WalOp::Put { row, .. } = &e.op {
                            rows.push(String::from_utf8(row.clone()).unwrap());
                        }
                    }
                }
            }
            rows.sort();
            rows
        };
        let lost = c.crash();
        assert_eq!(lost.total(), unsynced);
        assert_eq!(lost.lost_per_server.len(), 2, "one slot per server");
        assert!(c.is_crashed());
        assert!(matches!(
            c.get("orders", Get::new("o00")),
            Err(StoreError::ClusterDown)
        ));
        let report = c.recover();
        assert!(!c.is_crashed());
        assert_eq!(report.replayed_entries, synced_rows.len() as u64);
        assert!(report.recovery_sim > SimDuration::ZERO);
        let mut recovered: Vec<String> = c
            .scan("orders", Scan::all())
            .unwrap()
            .iter()
            .map(ResultRow::key_str)
            .collect();
        recovered.sort();
        assert_eq!(recovered, synced_rows, "exactly the synced writes survive");
        // recover() checkpointed: the replayed prefix is truncated.
        assert_eq!(c.wal(0).len() + c.wal(1).len(), 0);
    }

    #[test]
    fn checkpoint_makes_bulk_loads_durable_and_truncates_wal() {
        let c = Cluster::new(ClusterConfig {
            region_servers: 1,
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        c.bulk_load(
            "orders",
            (0..20).map(|i| Put::new(format!("o{i:02}")).with("cf", "v", "x")),
        )
        .unwrap();
        c.checkpoint();
        c.put("orders", Put::new("extra").with("cf", "v", "y")).unwrap();
        assert_eq!(c.wal(0).len(), 1);
        c.crash();
        c.recover();
        assert_eq!(c.row_count("orders").unwrap(), 21, "baseline + synced WAL");
        assert_eq!(c.wal(0).len(), 0, "recovery re-checkpointed");
        // Without a checkpoint, bulk loads are volatile.
        let c2 = Cluster::new(ClusterConfig { region_servers: 1, ..ClusterConfig::default() });
        c2.create_table(orders_schema()).unwrap();
        c2.bulk_load("orders", [Put::new("o1").with("cf", "v", "x")]).unwrap();
        c2.crash();
        c2.recover();
        assert_eq!(c2.row_count("orders").unwrap(), 0);
    }

    #[test]
    fn recovery_replays_deletes_and_increments_in_order() {
        let c = Cluster::new(ClusterConfig {
            region_servers: 3,
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        c.put("orders", Put::new("a").with("cf", "v", "1")).unwrap();
        c.increment("orders", Increment::new("n", "cf", "count", 5)).unwrap();
        c.put("orders", Put::new("b").with("cf", "v", "2")).unwrap();
        c.delete("orders", Delete::row("a")).unwrap();
        c.increment("orders", Increment::new("n", "cf", "count", -2)).unwrap();
        c.crash();
        c.recover();
        assert!(c.get("orders", Get::new("a")).unwrap().is_none(), "delete replayed");
        assert!(c.get("orders", Get::new("b")).unwrap().is_some());
        let row = c.get("orders", Get::new("n")).unwrap().unwrap();
        let count = i64::from_be_bytes(row.value("cf", "count").unwrap().try_into().unwrap());
        assert_eq!(count, 3, "increments replay to the same value");
    }

    #[test]
    fn injected_timeouts_surface_without_retry_and_heal_with_it() {
        let plan = FaultPlan::new(7).with_timeouts(1.0);
        let base = ClusterConfig {
            region_servers: 1,
            fault_plan: Some(plan.clone()),
            ..ClusterConfig::default()
        };
        // No retry policy: the first op fails.
        let c = Cluster::new(base.clone());
        c.create_table(orders_schema()).unwrap();
        assert!(matches!(
            c.put("orders", Put::new("o1").with("cf", "v", "1")),
            Err(StoreError::RpcTimeout { server: 0 })
        ));
        assert_eq!(c.fault_stats().timeouts, 1);
        // Always-timeout plan + retries: exhaustion with a source chain.
        let c = Cluster::new(ClusterConfig {
            retry: Some(RetryPolicy::default().with_max_attempts(3)),
            ..base
        });
        c.create_table(orders_schema()).unwrap();
        match c.put("orders", Put::new("o1").with("cf", "v", "1")) {
            Err(StoreError::RetriesExhausted { attempts: 3, last }) => {
                assert_eq!(*last, StoreError::RpcTimeout { server: 0 });
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        let stats = c.fault_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.giveups, 1);
        // Moderate fault rate + retries: everything lands.
        let c = Cluster::new(ClusterConfig {
            region_servers: 1,
            fault_plan: Some(FaultPlan::new(7).with_timeouts(0.2).with_transients(0.1)),
            retry: Some(RetryPolicy::default()),
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        for i in 0..200 {
            c.put("orders", Put::new(format!("o{i}")).with("cf", "v", "1")).unwrap();
        }
        assert_eq!(c.row_count("orders").unwrap(), 200);
        let stats = c.fault_stats();
        assert!(stats.injected_op_faults() > 0, "faults were injected");
        assert!(stats.retries >= stats.injected_op_faults());
        assert_eq!(stats.giveups, 0);
    }

    #[test]
    fn scheduled_server_crash_downs_the_victim_until_mttr_elapses() {
        // Server 0 crashes as soon as any sim time has been charged.
        let plan = FaultPlan::new(1).with_crashes(
            vec![SimDuration::from_nanos(1)],
            SimDuration::from_millis(20),
        );
        let c = Cluster::new(ClusterConfig {
            region_servers: 1,
            fault_plan: Some(plan.clone()),
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        c.put("orders", Put::new("o1").with("cf", "v", "1")).unwrap();
        // The crash event fires at the next op; server 0 is down.
        assert!(matches!(
            c.get("orders", Get::new("o1")),
            Err(StoreError::RegionUnavailable { server: 0 })
        ));
        assert_eq!(c.fault_stats().server_crashes, 1);
        // Burn past the MTTR window; the server is back.
        c.clock().charge(SimDuration::from_millis(25));
        assert!(c.get("orders", Get::new("o1")).unwrap().is_some());
        // With retries, the same outage is invisible to the caller: backoff
        // burns sim time until the MTTR window passes.
        let c = Cluster::new(ClusterConfig {
            region_servers: 1,
            fault_plan: Some(FaultPlan::new(1).with_crashes(
                vec![SimDuration::from_nanos(1)],
                SimDuration::from_millis(20),
            )),
            retry: Some(RetryPolicy::default().with_max_attempts(16)),
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        c.put("orders", Put::new("o1").with("cf", "v", "1")).unwrap();
        assert!(c.get("orders", Get::new("o1")).unwrap().is_some());
        let stats = c.fault_stats();
        assert_eq!(stats.server_crashes, 1);
        assert!(stats.retries > 0, "the outage was ridden out by retries");
    }

    #[test]
    fn replication_off_keeps_registry_empty_and_epochs_zero() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        assert!(!c.replication_enabled());
        let stats = c.replication_stats();
        assert_eq!(stats.replication_factor, 1);
        assert_eq!(stats.replicated_regions, 0);
        assert_eq!(stats.records_shipped, 0);
        let (_, epoch) = c.region_epoch_for("orders", b"o1").unwrap();
        assert_eq!(epoch, 0);
        // put_fenced with the (zero) captured epoch works unchanged.
        c.put_fenced("orders", Put::new("o1").with("cf", "v", "1"), epoch).unwrap();
    }

    #[test]
    fn replication_ships_synced_records_and_charges_for_it() {
        let run = |rf: usize| {
            let c = Cluster::new(ClusterConfig {
                region_servers: 3,
                replication_factor: rf,
                ..ClusterConfig::default()
            });
            c.create_table(orders_schema()).unwrap();
            let (_, cost) = c.clock().measure(|| {
                for i in 0..10 {
                    c.put("orders", Put::new(format!("o{i}")).with("cf", "v", "1")).unwrap();
                }
            });
            (c, cost)
        };
        let (c1, cost1) = run(1);
        let (c3, cost3) = run(3);
        assert_eq!(c1.replication_stats().records_shipped, 0);
        // RF=3: every synced record acknowledged by 2 live followers.
        assert_eq!(c3.replication_stats().records_shipped, 20);
        assert_eq!(c3.replication_stats().replica_lag, 0);
        let ship = c3.cost_model().replication_ship_cost(20);
        assert_eq!(cost3, cost1 + ship, "replication charges exactly the ship cost");
    }

    #[test]
    fn failover_keeps_the_region_available_through_the_crash_window() {
        // Server 0 (the region's primary) crashes at 3ms for a 50ms MTTR.
        // With RF=2 the region fails over to server 1 and every op inside
        // the window succeeds without any retry policy at all.
        let c = Cluster::new(ClusterConfig {
            region_servers: 2,
            replication_factor: 2,
            fault_plan: Some(FaultPlan::new(1).with_crashes(
                vec![SimDuration::from_millis(3)],
                SimDuration::from_millis(50),
            )),
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        for i in 0..20 {
            c.put("orders", Put::new(format!("o{i:02}")).with("cf", "v", format!("{i}")))
                .unwrap();
            let row = c.get("orders", Get::new(format!("o{i:02}"))).unwrap().unwrap();
            assert_eq!(row.value_str("cf", "v").unwrap(), format!("{i}"));
        }
        let stats = c.replication_stats();
        assert!(stats.failovers >= 1, "the crash must have triggered a failover");
        assert_eq!(c.fault_stats().server_crashes, 1);
        assert_eq!(c.fault_stats().unavailable_rejections, 0, "no op saw the outage");
        assert_eq!(c.row_count("orders").unwrap(), 20, "zero acked-synced loss");
    }

    #[test]
    fn rejoined_victim_catches_up_and_is_promotable_again() {
        // Crash 0: server 0 at 3ms (10ms MTTR) → fail over to server 1,
        // follower 0 falls behind while down, catches up on rejoin at 13ms.
        // Crash 1: server 1 at 40ms → fail back over to the caught-up 0.
        let c = Cluster::new(ClusterConfig {
            region_servers: 2,
            replication_factor: 2,
            fault_plan: Some(FaultPlan::new(1).with_crashes(
                vec![SimDuration::from_millis(3), SimDuration::from_millis(40)],
                SimDuration::from_millis(10),
            )),
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        for i in 0..40 {
            c.put("orders", Put::new(format!("o{i:02}")).with("cf", "v", "x")).unwrap();
        }
        assert!(c.clock().now() > SimInstant::EPOCH + SimDuration::from_millis(50));
        let stats = c.replication_stats();
        assert_eq!(stats.failovers, 2, "second crash promoted the rejoined victim");
        assert!(stats.catchup_replays >= 1, "the rejoin replayed the shipped log");
        assert!(stats.catchup_records > 0);
        assert_eq!(c.fault_stats().unavailable_rejections, 0);
        assert_eq!(c.row_count("orders").unwrap(), 40);
    }

    #[test]
    fn put_fenced_refuses_zombie_writers_after_failover() {
        let c = Cluster::new(ClusterConfig {
            region_servers: 2,
            replication_factor: 2,
            fault_plan: Some(FaultPlan::new(1).with_crashes(
                vec![SimDuration::from_nanos(1)],
                SimDuration::from_millis(20),
            )),
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        // The writer captures the epoch, then the primary crashes.
        let (region, epoch) = c.region_epoch_for("orders", b"o1").unwrap();
        assert_eq!(epoch, 0);
        c.put("orders", Put::new("seed").with("cf", "v", "1")).unwrap();
        let _ = c.get("orders", Get::new("seed")).unwrap(); // fires the crash + failover
        let err = c
            .put_fenced("orders", Put::new("o1").with("cf", "v", "zombie"), epoch)
            .unwrap_err();
        assert_eq!(
            err,
            StoreError::StaleRegionEpoch { region, current: 1, presented: 0 }
        );
        assert!(!err.retryable());
        assert!(c.get("orders", Get::new("o1")).unwrap().is_none(), "the write was fenced");
        // Re-reading the epoch un-fences the writer.
        let (_, fresh) = c.region_epoch_for("orders", b"o1").unwrap();
        assert_eq!(fresh, 1);
        c.put_fenced("orders", Put::new("o1").with("cf", "v", "ok"), fresh).unwrap();
        assert!(c.get("orders", Get::new("o1")).unwrap().is_some());
    }

    #[test]
    fn recover_realigns_routing_with_the_replication_registry() {
        // A failover moves the region to server 1; a full-cluster crash and
        // recovery must keep routing it to server 1 (the registry, i.e. the
        // ZooKeeper layer, survives), and keep its bumped epoch.
        let c = Cluster::new(ClusterConfig {
            region_servers: 2,
            replication_factor: 2,
            fault_plan: Some(FaultPlan::new(1).with_crashes(
                vec![SimDuration::from_nanos(1)],
                SimDuration::from_millis(500),
            )),
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        c.put("orders", Put::new("a").with("cf", "v", "1")).unwrap();
        c.put("orders", Put::new("b").with("cf", "v", "2")).unwrap(); // fires failover
        assert_eq!(c.replication_stats().failovers, 1);
        let (region, epoch) = c.region_epoch_for("orders", b"a").unwrap();
        assert_eq!(epoch, 1);
        c.crash();
        c.recover();
        assert_eq!(c.current_epoch(region), 1, "epochs survive recovery");
        // Server 0 is still inside its MTTR window: if routing had reverted
        // to it, this op would be rejected as unavailable.
        c.put("orders", Put::new("c").with("cf", "v", "3")).unwrap();
        assert_eq!(c.fault_stats().unavailable_rejections, 0);
        assert_eq!(c.row_count("orders").unwrap(), 3);
    }

    #[test]
    fn server_crash_with_unsynced_tail_loses_only_the_victims_writes() {
        // Group commit leaves an unsynced tail; the scheduled crash must
        // drop it and rebuild the victim's regions from durable state.
        let c = Cluster::new(ClusterConfig {
            region_servers: 1,
            wal_sync_interval: 100,
            fault_plan: Some(FaultPlan::new(1).with_crashes(
                vec![SimDuration::from_millis(20)],
                SimDuration::from_nanos(1),
            )),
            retry: Some(RetryPolicy::default()),
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        c.bulk_load("orders", (0..10).map(|i| Put::new(format!("base{i}")).with("cf", "v", "x")))
            .unwrap();
        c.checkpoint();
        // Non-syncing puts charge ~1ms each (RPC + server work, sync
        // deferred), so the 20ms crash fires mid-stream with an unsynced
        // tail in the log.
        for i in 0..40 {
            c.put("orders", Put::new(format!("live{i:02}")).with("cf", "v", "y")).unwrap();
        }
        let stats = c.fault_stats();
        assert_eq!(stats.server_crashes, 1);
        assert!(stats.wal_records_lost > 0, "acked-unsynced records were lost");
        let rows = c.row_count("orders").unwrap();
        // Baseline survived; exactly the lost tail is missing.
        assert!(rows >= 10, "checkpointed rows survive");
        assert_eq!(rows, 10 + 40 - stats.wal_records_lost);
    }
}
