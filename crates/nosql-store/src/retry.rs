//! Client-side retry with capped exponential backoff.
//!
//! A [`RetryPolicy`] wraps every public `Cluster` operation: when an op
//! fails with a [`StoreError::retryable`] fault, the client charges a
//! backoff to the **simulated** clock and tries again, up to
//! `max_attempts`.  Because backoff burns simulated time, a server that is
//! down for its MTTR window naturally comes back within a few attempts —
//! retries convert injected faults into latency instead of errors, which is
//! what the `fig_faults` goodput sweep measures.
//!
//! Jitter is drawn from a dedicated seeded RNG so the retry schedule is
//! deterministic per seed and independent of the fault-injection RNG.

use crate::error::{StoreError, StoreResult};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simclock::{SimClock, SimDuration};
use std::sync::atomic::{AtomicU64, Ordering};

/// A capped exponential backoff + jitter retry policy.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum total attempts (including the first). 1 disables retries.
    pub max_attempts: u32,
    /// Backoff charged before the first retry; doubles on each subsequent
    /// retry.
    pub base_backoff: SimDuration,
    /// Cap on a single backoff step.
    pub max_backoff: SimDuration,
    /// Jitter fraction in `[0, 1]`: each backoff is perturbed uniformly in
    /// `[-jitter, +jitter]` of its nominal value.
    pub jitter: f64,
    /// Seed of the jitter RNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: SimDuration::from_millis(2),
            max_backoff: SimDuration::from_millis(64),
            jitter: 0.2,
            seed: 0x8E_784,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (ops fail on the first fault).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Sets the attempt budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the backoff range.
    pub fn with_backoff(mut self, base: SimDuration, max: SimDuration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Nominal (pre-jitter) backoff before retry number `retry` (0-based).
    pub fn nominal_backoff(&self, retry: u32) -> SimDuration {
        let shift = retry.min(32);
        let nanos = self
            .base_backoff
            .as_nanos()
            .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
            .min(self.max_backoff.as_nanos());
        SimDuration::from_nanos(nanos)
    }
}

/// Live retry state for one cluster: policy + jitter RNG + counters.
#[derive(Debug)]
pub(crate) struct RetryRuntime {
    pub(crate) policy: RetryPolicy,
    rng: Mutex<StdRng>,
    pub(crate) retries: AtomicU64,
    pub(crate) giveups: AtomicU64,
}

impl RetryRuntime {
    pub(crate) fn new(policy: RetryPolicy) -> Self {
        RetryRuntime {
            rng: Mutex::new(StdRng::seed_from_u64(policy.seed)),
            policy,
            retries: AtomicU64::new(0),
            giveups: AtomicU64::new(0),
        }
    }

    /// Backoff for retry number `retry`, with jitter applied.
    fn backoff(&self, retry: u32) -> SimDuration {
        let nominal = self.policy.nominal_backoff(retry).as_nanos();
        if self.policy.jitter <= 0.0 || nominal == 0 {
            return SimDuration::from_nanos(nominal);
        }
        let spread = (nominal as f64 * self.policy.jitter) as u64;
        if spread == 0 {
            return SimDuration::from_nanos(nominal);
        }
        // Uniform in [nominal - spread, nominal + spread].
        let offset = self.rng.lock().random_range(0..=2 * spread);
        SimDuration::from_nanos(nominal - spread + offset)
    }

    /// Runs `op` under the policy: retryable failures back off on the sim
    /// clock and re-attempt; exhaustion wraps the last error in
    /// [`StoreError::RetriesExhausted`]; non-retryable errors pass through.
    pub(crate) fn run<T>(
        &self,
        clock: &SimClock,
        mut op: impl FnMut() -> StoreResult<T>,
    ) -> StoreResult<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(err) if err.retryable() => {
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        self.giveups.fetch_add(1, Ordering::Relaxed);
                        return Err(StoreError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(err),
                        });
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    clock.charge(self.backoff(attempt - 1));
                }
                Err(err) => return Err(err),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy::default()
            .with_backoff(SimDuration::from_millis(2), SimDuration::from_millis(10));
        assert_eq!(policy.nominal_backoff(0), SimDuration::from_millis(2));
        assert_eq!(policy.nominal_backoff(1), SimDuration::from_millis(4));
        assert_eq!(policy.nominal_backoff(2), SimDuration::from_millis(8));
        assert_eq!(policy.nominal_backoff(3), SimDuration::from_millis(10));
        assert_eq!(policy.nominal_backoff(40), SimDuration::from_millis(10));
    }

    #[test]
    fn run_retries_until_success_charging_the_clock() {
        let runtime = RetryRuntime::new(RetryPolicy::default());
        let clock = SimClock::new();
        let mut failures_left = 3;
        let result = runtime.run(&clock, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(StoreError::RpcTimeout { server: 0 })
            } else {
                Ok(42)
            }
        });
        assert_eq!(result, Ok(42));
        assert_eq!(runtime.retries.load(Ordering::Relaxed), 3);
        assert_eq!(runtime.giveups.load(Ordering::Relaxed), 0);
        // Three backoffs were charged to simulated time.
        assert!(clock.now().as_nanos() > 0);
    }

    #[test]
    fn run_exhausts_into_retries_exhausted_with_source() {
        let runtime = RetryRuntime::new(RetryPolicy::default().with_max_attempts(3));
        let clock = SimClock::new();
        let result: StoreResult<()> =
            runtime.run(&clock, || Err(StoreError::TransientOp { server: 0 }));
        match result {
            Err(StoreError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert_eq!(*last, StoreError::TransientOp { server: 0 });
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(runtime.giveups.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn non_retryable_errors_pass_through_without_backoff() {
        let runtime = RetryRuntime::new(RetryPolicy::default());
        let clock = SimClock::new();
        let result: StoreResult<()> =
            runtime.run(&clock, || Err(StoreError::TableNotFound("t".into())));
        assert_eq!(result, Err(StoreError::TableNotFound("t".into())));
        assert_eq!(clock.now().as_nanos(), 0, "no backoff charged");
        assert_eq!(runtime.retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let seq = |seed: u64| {
            let runtime = RetryRuntime::new(RetryPolicy { seed, ..Default::default() });
            (0..32).map(|i| runtime.backoff(i % 6).as_nanos()).collect::<Vec<_>>()
        };
        assert_eq!(seq(11), seq(11));
        assert_ne!(seq(11), seq(12));
        let policy = RetryPolicy::default();
        let runtime = RetryRuntime::new(policy.clone());
        for retry in 0..8 {
            let nominal = policy.nominal_backoff(retry).as_nanos() as f64;
            let b = runtime.backoff(retry).as_nanos() as f64;
            assert!(b >= nominal * (1.0 - policy.jitter) - 1.0);
            assert!(b <= nominal * (1.0 + policy.jitter) + 1.0);
        }
    }
}
