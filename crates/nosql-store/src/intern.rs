//! Interner for column-family and qualifier names.
//!
//! A store holds millions of cells but only a handful of distinct
//! `(family, qualifier)` names (one per declared column).  Interning the
//! name strings into shared `Arc<str>` handles means `RowData`'s column map,
//! every materialized [`crate::Cell`] and every mutation key clone is a
//! pointer bump instead of a `String` allocation — the dominant allocation
//! source on the scan path before this existed.

use std::collections::HashSet; // lint-allow(determinism): interner is probe/insert only, never iterated
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

// lint-allow(determinism): interner is probe/insert only, never iterated
fn table() -> &'static RwLock<HashSet<Arc<str>>> {
    // lint-allow(determinism): interner is probe/insert only, never iterated
    static TABLE: OnceLock<RwLock<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashSet::new())) // lint-allow(determinism): interner is probe/insert only, never iterated
}

/// Interns a family or qualifier name, returning a shared handle.
pub fn intern_name(name: &str) -> Arc<str> {
    {
        let set = table().read().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = set.get(name) {
            return Arc::clone(existing);
        }
    }
    let mut set = table().write().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = set.get(name) {
        return Arc::clone(existing);
    }
    let shared: Arc<str> = Arc::from(name);
    set.insert(Arc::clone(&shared));
    shared
}

/// Resolves a name without inserting; `None` means the name has never been
/// interned — and therefore no stored column can carry it.  Probe-only
/// paths (conditional reads, deletes of possibly-absent columns) use this
/// so data-derived lookups cannot grow the table.
pub fn lookup_name(name: &str) -> Option<Arc<str>> {
    table()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
        .map(Arc::clone)
}

/// Number of distinct names interned so far (diagnostics and allocation
/// tests: repeated writes to existing columns must not grow this).
pub fn interned_name_count() -> usize {
    table().read().unwrap_or_else(PoisonError::into_inner).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_storage() {
        let a = intern_name("tst_store_intern_cf");
        let b = intern_name("tst_store_intern_cf");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn lookup_never_inserts() {
        let before = interned_name_count();
        assert!(lookup_name("tst_store_lookup_never_seen").is_none());
        assert_eq!(interned_name_count(), before);
    }

    #[test]
    fn repeat_interning_does_not_grow_the_table() {
        let _ = intern_name("tst_store_intern_stable");
        let before = interned_name_count();
        for _ in 0..100 {
            let _ = intern_name("tst_store_intern_stable");
        }
        assert_eq!(interned_name_count(), before);
    }
}
