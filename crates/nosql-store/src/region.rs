//! Regions: contiguous row-key ranges of a table.
//!
//! Like HBase, every table is horizontally partitioned into regions, each
//! responsible for a half-open key range `[start, end)`.  A region applies
//! single-row operations atomically (the caller holds the region lock for
//! the duration of the operation), which is the atomicity unit the paper's
//! concurrency analysis starts from.

use crate::cell::{Bytes, Cell, Timestamp};
use crate::error::{StoreError, StoreResult};
use crate::ops::{Delete, DeleteScope, Expectation, Filter, Get, Increment, Put, Scan};
use crate::table::{ColKey, ResultRow, RowData, TableSchema};
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// Identifier of a region within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

/// Identifier of a simulated region server (cluster node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionServerId(pub usize);

/// One contiguous key range of one table.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region identifier.
    pub id: RegionId,
    /// Hosting region server.
    pub server: RegionServerId,
    /// Inclusive start key (empty = unbounded).
    pub start: Bytes,
    /// Exclusive end key (empty = unbounded).
    pub end: Bytes,
    rows: BTreeMap<Bytes, RowData>,
    bytes: usize,
}

impl Region {
    /// Creates an empty region covering `[start, end)`.
    pub fn new(id: RegionId, server: RegionServerId, start: Bytes, end: Bytes) -> Self {
        Region {
            id,
            server,
            start,
            end,
            rows: BTreeMap::new(),
            bytes: 0,
        }
    }

    /// True if `key` falls inside this region's range.
    pub fn contains(&self, key: &[u8]) -> bool {
        (self.start.is_empty() || key >= self.start.as_slice())
            && (self.end.is_empty() || key < self.end.as_slice())
    }

    /// Number of rows currently stored.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Approximate stored bytes (cells + row keys).
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Drops every stored row (a crashed server losing its memstore).  The
    /// region keeps its identity and key range; recovery repopulates it from
    /// the durable checkpoint + synced WAL.
    pub(crate) fn clear_rows(&mut self) {
        self.rows.clear();
        self.bytes = 0;
    }

    /// Read access to the stored rows (checkpoint snapshots during
    /// recovery).
    pub(crate) fn rows(&self) -> &BTreeMap<Bytes, RowData> {
        &self.rows
    }

    /// Inserts a fully-formed row (restoring a checkpoint snapshot during
    /// recovery), replacing any existing row under the key.  Byte accounting
    /// is deferred: callers run [`Region::recompute_bytes`] once the rebuild
    /// is complete.
    pub(crate) fn insert_row(&mut self, key: Bytes, row: RowData) {
        self.rows.insert(key, row);
    }

    /// Recomputes the byte accounting from scratch (after recovery rebuilt
    /// rows wholesale).
    pub(crate) fn recompute_bytes(&mut self) {
        self.bytes = self
            .rows
            .iter()
            .map(|(k, r)| r.heap_size(k.len()))
            .sum();
    }

    /// Applies a [`Put`]; returns the number of cells written.
    ///
    /// Byte accounting is incremental: each written cell adjusts the
    /// region's size by its own footprint (or by the value-length delta when
    /// it replaces an existing version) instead of re-walking — and
    /// re-materializing the column names of — the whole row per mutation.
    pub fn put(&mut self, schema: &TableSchema, put: &Put, ts: Timestamp) -> StoreResult<usize> {
        if put.cells.is_empty() {
            return Err(StoreError::EmptyMutation);
        }
        for (family, _, _) in &put.cells {
            if !schema.has_family(family) {
                return Err(StoreError::UnknownColumnFamily {
                    table: schema.name.clone(),
                    family: family.clone(),
                });
            }
        }
        let effective_ts = put.timestamp.unwrap_or(ts);
        let key_len = put.row.len();
        let row = self.rows.entry(put.row.clone()).or_default();
        let mut delta = 0isize;
        for (family, qualifier, value) in &put.cells {
            let col = ColKey::new(family, qualifier);
            let cell_size = col.cell_heap_size(value.len()) + key_len;
            let versions = row.columns.entry(col).or_default();
            match versions.insert(Reverse(effective_ts), Arc::from(&value[..])) {
                Some(old) => delta += value.len() as isize - old.len() as isize,
                None => delta += cell_size as isize,
            }
        }
        self.bytes = (self.bytes as isize + delta) as usize;
        Ok(put.cells.len())
    }

    /// Applies a [`Delete`]; returns `true` if any data was removed.
    pub fn delete(&mut self, delete: &Delete) -> StoreResult<bool> {
        let key_len = delete.row.len();
        let mut freed = 0usize;
        let removed = match &delete.scope {
            DeleteScope::Row => match self.rows.remove(&delete.row) {
                Some(row) => {
                    freed = row.heap_size(key_len);
                    true
                }
                None => false,
            },
            DeleteScope::Columns(columns) => {
                let mut removed = false;
                if let Some(row) = self.rows.get_mut(&delete.row) {
                    for (family, qualifier) in columns {
                        let Some(col) = ColKey::lookup(family, qualifier) else {
                            continue; // names never seen → column cannot exist
                        };
                        if let Some(versions) = row.columns.remove(&col) {
                            freed += versions
                                .values()
                                .map(|v| col.cell_heap_size(v.len()) + key_len)
                                .sum::<usize>();
                            removed = true;
                        }
                    }
                    if row.is_empty() {
                        self.rows.remove(&delete.row);
                    }
                }
                removed
            }
        };
        self.bytes -= freed;
        Ok(removed)
    }

    /// Applies an [`Increment`]; returns the new counter value.
    pub fn increment(
        &mut self,
        schema: &TableSchema,
        inc: &Increment,
        ts: Timestamp,
    ) -> StoreResult<i64> {
        if !schema.has_family(&inc.family) {
            return Err(StoreError::UnknownColumnFamily {
                table: schema.name.clone(),
                family: inc.family.clone(),
            });
        }
        let key_len = inc.row.len();
        let col = ColKey::new(&inc.family, &inc.qualifier);
        let cell_size = col.cell_heap_size(8) + key_len;
        let row = self.rows.entry(inc.row.clone()).or_default();
        let versions = row.columns.entry(col).or_default();
        let current = match versions.first_key_value() {
            Some((_, value)) => {
                let bytes: [u8; 8] = value[..].try_into().map_err(|_| {
                    StoreError::NotACounter {
                        row: String::from_utf8_lossy(&inc.row).into_owned(),
                        qualifier: inc.qualifier.clone(),
                    }
                })?;
                i64::from_be_bytes(bytes)
            }
            None => 0,
        };
        let next = current + inc.amount;
        let delta = match versions.insert(Reverse(ts), Arc::from(&next.to_be_bytes()[..])) {
            Some(old) => 8isize - old.len() as isize,
            None => cell_size as isize,
        };
        self.bytes = (self.bytes as isize + delta) as usize;
        Ok(next)
    }

    /// Applies a [`crate::ops::CheckAndPut`]; returns whether the put was applied.
    pub fn check_and_put(
        &mut self,
        schema: &TableSchema,
        family: &str,
        qualifier: &str,
        expect: &Expectation,
        put: &Put,
        ts: Timestamp,
    ) -> StoreResult<bool> {
        let current = self
            .rows
            .get(&put.row)
            .and_then(|row| {
                let col = ColKey::lookup(family, qualifier)?;
                row.columns.get(&col)
            })
            .and_then(|versions| versions.first_key_value())
            .map(|(_, value)| value.clone());
        let matches = match (expect, &current) {
            (Expectation::Absent, None) => true,
            (Expectation::Absent, Some(_)) => false,
            (Expectation::Equals(expected), Some(actual)) => expected[..] == actual[..],
            (Expectation::Equals(_), None) => false,
        };
        if matches {
            self.put(schema, put, ts)?;
        }
        Ok(matches)
    }

    /// Resolves a `(family, qualifier)` projection to interned column keys
    /// once per call site, so the per-cell membership check is two pointer
    /// compares instead of string comparisons.  `None` = no projection.
    /// Names never interned cannot match any stored column and are dropped
    /// (an all-unknown projection still projects to nothing, it does not
    /// fall back to "everything").
    pub(crate) fn resolve_projection(columns: &[(String, String)]) -> Option<Vec<ColKey>> {
        if columns.is_empty() {
            return None;
        }
        Some(
            columns
                .iter()
                .filter_map(|(f, q)| ColKey::lookup(f, q))
                .collect(),
        )
    }

    fn visible_cells(
        row: &RowData,
        projection: Option<&[ColKey]>,
        max_versions: usize,
        time_bound: Option<Timestamp>,
    ) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(row.columns.len());
        for (col, versions) in &row.columns {
            if let Some(cols) = projection {
                // Interned names are unique, so pointer equality suffices.
                if !cols.iter().any(|c| {
                    Arc::ptr_eq(&c.family, &col.family)
                        && Arc::ptr_eq(&c.qualifier, &col.qualifier)
                }) {
                    continue;
                }
            }
            let mut taken = 0;
            for (Reverse(ts), value) in versions.iter() {
                if let Some(bound) = time_bound {
                    if *ts > bound {
                        continue;
                    }
                }
                cells.push(Cell {
                    family: Arc::clone(&col.family),
                    qualifier: Arc::clone(&col.qualifier),
                    timestamp: *ts,
                    value: value.clone(),
                });
                taken += 1;
                if taken >= max_versions {
                    break;
                }
            }
        }
        cells
    }

    /// Applies a [`Get`]; returns the row if it exists and has visible cells.
    pub fn get(&self, get: &Get) -> Option<ResultRow> {
        let row = self.rows.get(&get.row)?;
        let projection = Self::resolve_projection(&get.columns);
        let cells =
            Self::visible_cells(row, projection.as_deref(), get.max_versions, get.time_bound);
        if cells.is_empty() {
            return None;
        }
        Some(ResultRow {
            key: get.row.clone(),
            cells,
        })
    }

    /// Newest version of one column visible at or before `bound`
    /// (`None` bound = newest overall).
    fn newest_visible<'a>(
        row: &'a RowData,
        family: &str,
        qualifier: &str,
        bound: Option<Timestamp>,
    ) -> Option<&'a Arc<[u8]>> {
        let col = ColKey::lookup(family, qualifier)?;
        let versions = row.columns.get(&col)?;
        match bound {
            None => versions.first_key_value().map(|(_, v)| v),
            // Keys sort by `Reverse(ts)`, so `Reverse(bound)..` walks the
            // versions with `ts <= bound`, newest first.
            Some(bound) => versions.range(Reverse(bound)..).next().map(|(_, v)| v),
        }
    }

    /// Evaluates a scan filter against the stored row itself (not the
    /// returned cells), so a column projection never hides the filtered
    /// column from the filter.
    fn filter_matches(
        row_key: &[u8],
        row: &RowData,
        filter: &Filter,
        bound: Option<Timestamp>,
    ) -> bool {
        match filter {
            Filter::ColumnEquals {
                family,
                qualifier,
                value,
            } => Self::newest_visible(row, family, qualifier, bound)
                .is_some_and(|v| v[..] == value[..]),
            Filter::ColumnNotEquals {
                family,
                qualifier,
                value,
            } => Self::newest_visible(row, family, qualifier, bound)
                .is_some_and(|v| v[..] != value[..]),
            Filter::RowPrefix(prefix) => row_key.starts_with(prefix),
            Filter::And(filters) => filters
                .iter()
                .all(|f| Self::filter_matches(row_key, row, f, bound)),
        }
    }

    /// Applies a [`Scan`] to the portion of the range owned by this region.
    ///
    /// `remaining_limit` is the number of rows the overall scan may still
    /// return (`usize::MAX` when unlimited).
    pub fn scan(&self, scan: &Scan, remaining_limit: usize) -> StoreResult<Vec<ResultRow>> {
        let projection = Self::resolve_projection(&scan.columns);
        let mut out = Vec::new();
        self.scan_page(scan, projection.as_deref(), None, remaining_limit, &mut out)?;
        Ok(out)
    }

    /// One page of a [`Scan`]: appends up to `max_rows` matching rows whose
    /// key is strictly greater than `resume_after` (when given) to `out`.
    /// `projection` is the scan's column projection pre-resolved by
    /// [`Region::resolve_projection`] (once per cursor, not per page).
    ///
    /// This is the primitive [`crate::ScanCursor`] pulls on: the cursor
    /// re-locates the right region per page via the resume key, so scans
    /// survive region splits between pages without rescanning.
    pub(crate) fn scan_page(
        &self,
        scan: &Scan,
        projection: Option<&[ColKey]>,
        resume_after: Option<&[u8]>,
        max_rows: usize,
        out: &mut Vec<ResultRow>,
    ) -> StoreResult<()> {
        if !scan.start.is_empty() && !scan.stop.is_empty() && scan.start > scan.stop {
            return Err(StoreError::InvalidRange);
        }
        let lower: Bound<&[u8]> = match resume_after {
            Some(after) if scan.start.is_empty() || after >= scan.start.as_slice() => {
                Bound::Excluded(after)
            }
            _ if scan.start.is_empty() => Bound::Unbounded,
            _ => Bound::Included(scan.start.as_slice()),
        };
        let upper: Bound<&[u8]> = if scan.stop.is_empty() {
            Bound::Unbounded
        } else {
            Bound::Excluded(scan.stop.as_slice())
        };
        let mut taken = 0;
        for (key, row) in self.rows.range::<[u8], _>((lower, upper)) {
            if taken >= max_rows {
                break;
            }
            let cells = Self::visible_cells(row, projection, 1, scan.time_bound);
            if cells.is_empty() {
                continue;
            }
            if let Some(filter) = &scan.filter {
                if !Self::filter_matches(key, row, filter, scan.time_bound) {
                    continue;
                }
            }
            out.push(ResultRow {
                key: key.clone(),
                cells,
            });
            taken += 1;
        }
        Ok(())
    }

    /// Drops excess cell versions in every row, per the schema's
    /// `max_versions` settings, and reclaims their space.  Models an HBase
    /// major compaction (the paper major-compacts after every load).
    pub fn major_compact(&mut self, schema: &TableSchema) {
        let mut bytes = 0;
        for (key, row) in self.rows.iter_mut() {
            row.compact(|family| {
                schema
                    .family(family)
                    .map(|f| f.max_versions)
                    .unwrap_or(1)
            });
            bytes += row.heap_size(key.len());
        }
        self.rows.retain(|_, row| !row.is_empty());
        self.bytes = bytes;
    }

    /// Splits this region at its median row key, returning the upper half.
    /// Returns `None` if the region holds fewer than two rows.
    pub fn split(&mut self, new_id: RegionId, new_server: RegionServerId) -> Option<Region> {
        if self.rows.len() < 2 {
            return None;
        }
        // `BTreeMap` has no order-statistics index, so locating the median
        // key is an intentional O(n) walk: splits are rare (amortized over
        // the thousands of puts that grew the region past the threshold),
        // which is far cheaper than maintaining a rank structure per write.
        let split_key = self.rows.keys().nth(self.rows.len() / 2)?.clone();
        let upper_rows = self.rows.split_off(&split_key);
        // The old end range moves into the upper half (this region's end is
        // overwritten below), so only the split key itself needs a copy.
        let mut upper = Region::new(
            new_id,
            new_server,
            split_key.clone(),
            std::mem::take(&mut self.end),
        );
        upper.rows = upper_rows;
        upper.bytes = upper
            .rows
            .iter()
            .map(|(k, r)| r.heap_size(k.len()))
            .sum();
        self.end = split_key;
        self.bytes = self
            .rows
            .iter()
            .map(|(k, r)| r.heap_size(k.len()))
            .sum();
        Some(upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new("t").with_versioned_family("cf", 4)
    }

    fn region() -> Region {
        Region::new(RegionId(1), RegionServerId(0), Vec::new(), Vec::new())
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut r = region();
        r.put(&schema(), &Put::new("a").with("cf", "x", "1"), 1).unwrap();
        let row = r.get(&Get::new("a")).unwrap();
        assert_eq!(row.value("cf", "x").unwrap(), b"1");
        assert!(r.get(&Get::new("missing")).is_none());
    }

    #[test]
    fn put_rejects_unknown_family_and_empty_mutation() {
        let mut r = region();
        let err = r
            .put(&schema(), &Put::new("a").with("bogus", "x", "1"), 1)
            .unwrap_err();
        assert!(matches!(err, StoreError::UnknownColumnFamily { .. }));
        assert!(matches!(
            r.put(&schema(), &Put::new("a"), 1).unwrap_err(),
            StoreError::EmptyMutation
        ));
    }

    #[test]
    fn newer_timestamp_wins_and_time_bound_reads_history() {
        let mut r = region();
        r.put(&schema(), &Put::new("a").with("cf", "x", "old"), 5).unwrap();
        r.put(&schema(), &Put::new("a").with("cf", "x", "new"), 9).unwrap();
        assert_eq!(r.get(&Get::new("a")).unwrap().value("cf", "x").unwrap(), b"new");
        let historic = r.get(&Get::new("a").up_to(6)).unwrap();
        assert_eq!(historic.value("cf", "x").unwrap(), b"old");
    }

    #[test]
    fn delete_row_and_column() {
        let mut r = region();
        r.put(
            &schema(),
            &Put::new("a").with("cf", "x", "1").with("cf", "y", "2"),
            1,
        )
        .unwrap();
        assert!(r.delete(&Delete::column("a", "cf", "x")).unwrap());
        let row = r.get(&Get::new("a")).unwrap();
        assert!(row.value("cf", "x").is_none());
        assert!(r.delete(&Delete::row("a")).unwrap());
        assert!(r.get(&Get::new("a")).is_none());
        assert!(!r.delete(&Delete::row("a")).unwrap());
    }

    #[test]
    fn increment_creates_and_advances_counter() {
        let mut r = region();
        assert_eq!(r.increment(&schema(), &Increment::new("c", "cf", "n", 5), 1).unwrap(), 5);
        assert_eq!(r.increment(&schema(), &Increment::new("c", "cf", "n", -2), 2).unwrap(), 3);
    }

    #[test]
    fn increment_rejects_non_counter_cells() {
        let mut r = region();
        r.put(&schema(), &Put::new("c").with("cf", "n", "oops"), 1).unwrap();
        assert!(matches!(
            r.increment(&schema(), &Increment::new("c", "cf", "n", 1), 2),
            Err(StoreError::NotACounter { .. })
        ));
    }

    #[test]
    fn check_and_put_is_conditional() {
        let mut r = region();
        let acquire = Put::new("lock1").with("cf", "held", "1");
        let applied = r
            .check_and_put(&schema(), "cf", "held", &Expectation::Absent, &acquire, 1)
            .unwrap();
        assert!(applied);
        // Second acquire against the same lock must fail.
        let applied = r
            .check_and_put(&schema(), "cf", "held", &Expectation::Absent, &acquire, 2)
            .unwrap();
        assert!(!applied);
        // Release: expect current value "1", write "0".
        let release = Put::new("lock1").with("cf", "held", "0");
        let applied = r
            .check_and_put(
                &schema(),
                "cf",
                "held",
                &Expectation::Equals(b"1".to_vec()),
                &release,
                3,
            )
            .unwrap();
        assert!(applied);
    }

    #[test]
    fn scan_respects_range_filter_and_limit() {
        let mut r = region();
        for i in 0..10 {
            r.put(
                &schema(),
                &Put::new(format!("row{i:02}")).with("cf", "v", format!("{i}")),
                i as u64,
            )
            .unwrap();
        }
        let rows = r.scan(&Scan::range("row02", "row05"), usize::MAX).unwrap();
        assert_eq!(rows.len(), 3);
        let rows = r
            .scan(
                &Scan::all().with_filter(Filter::ColumnEquals {
                    family: "cf".into(),
                    qualifier: "v".into(),
                    value: b"7".to_vec(),
                }),
                usize::MAX,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key_str(), "row07");
        let rows = r.scan(&Scan::all(), 4).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(r.scan(&Scan::range("z", "a"), usize::MAX).is_err());
    }

    #[test]
    fn compaction_trims_versions_and_size() {
        let mut r = region();
        let compact_schema = TableSchema::new("t").with_family("cf"); // 1 version
        for ts in 1..=20u64 {
            r.put(&schema(), &Put::new("a").with("cf", "x", vec![0u8; 100]), ts).unwrap();
        }
        let before = r.byte_size();
        r.major_compact(&compact_schema);
        assert!(r.byte_size() < before);
        let row = r.get(&Get::new("a").versions(10)).unwrap();
        assert_eq!(row.cells.len(), 1);
    }

    #[test]
    fn split_partitions_rows_and_sizes() {
        let mut r = region();
        for i in 0..10 {
            r.put(
                &schema(),
                &Put::new(format!("row{i:02}")).with("cf", "v", "x"),
                i as u64,
            )
            .unwrap();
        }
        let total_bytes = r.byte_size();
        let upper = r.split(RegionId(2), RegionServerId(1)).unwrap();
        assert_eq!(r.row_count() + upper.row_count(), 10);
        assert_eq!(r.byte_size() + upper.byte_size(), total_bytes);
        assert!(r.contains(b"row00"));
        assert!(!r.contains(upper.start.as_slice()));
        assert!(upper.contains(b"row09"));
    }

    #[test]
    fn tiny_region_refuses_split() {
        let mut r = region();
        r.put(&schema(), &Put::new("only").with("cf", "v", "x"), 1).unwrap();
        assert!(r.split(RegionId(2), RegionServerId(1)).is_none());
    }
}
