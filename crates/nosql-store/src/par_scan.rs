//! Region-parallel scans: the resume-key region walk of [`ScanCursor`],
//! partitioned across worker threads.
//!
//! [`Cluster::par_scan_stream`] snapshots the table's region boundaries and
//! carves the scan range into up to `threads` **contiguous sub-ranges**, one
//! serial [`ScanCursor`] each.  Workers page independently (each page
//! re-locates its region by resume key, so workers survive splits that land
//! between their pages) and the merged cursor yields the sub-ranges' pages
//! in key-range order — because the sub-ranges are disjoint and sorted,
//! concatenation *is* the global key order, and the parallel cursor returns
//! exactly what the serial cursor would.
//!
//! # Determinism
//!
//! Workers charge sim costs into **private** clocks and advance in
//! synchronous *rounds*: a round pulls up to [`ROUND_PAGES`] pages from
//! every unfinished worker (fanned out on [`pool`] scoped threads) and only
//! runs when the consumer needs a page.  How many rounds run is a pure
//! function of the data and the consumption pattern — never of OS
//! scheduling — so each worker's clock delta is deterministic.  At
//! exhaustion (or drop) the deltas merge per the workspace rule:
//! **elapsed = max of workers** charged once into the shared clock
//! ([`simclock::merge_elapsed`]), **cost counters = sum** (workers bump the
//! shared atomic [`crate::OpCounters`] directly).  `threads <= 1` routes to
//! the serial [`Cluster::scan_stream`] unchanged, so single-threaded
//! figures are byte-identical to the serial pipeline.
//!
//! # Memory: ordered merge buffers later sub-ranges
//!
//! Emitting global key order while all workers scan concurrently means
//! later sub-ranges' pages are **buffered** until the merge reaches them —
//! a consumer that drains the whole scan transiently holds up to
//! `(parts-1)/parts` of the result as fetched pages (page *structure*: row
//! keys plus `Arc`-shared cell handles, not value copies).  That is the
//! deliberate price of scan-side parallelism: capping the per-worker queue
//! would idle every worker but the one being drained and serialize the
//! scan.  Rounds only run on demand, so early-stopping consumers (row
//! limits, abandoned cursors) buffer in proportion to what they consumed.
//! Callers that need PR 3's O(page) streaming memory keep the serial
//! [`Cluster::scan_stream`] — which is also what every `threads = 1` and
//! limit-pushdown path uses.

use crate::cell::Bytes;
use crate::cluster::Cluster;
use crate::cursor::ScanCursor;
use crate::error::{StoreError, StoreResult};
use crate::ops::Scan;
use crate::table::ResultRow;
use simclock::{merge_elapsed, WorkerClock};
use std::collections::VecDeque;

/// Pages each worker pulls per synchronous round.  Large enough to amortize
/// the round's thread fan-out over ~512 rows per worker, small enough that
/// an early-stopping consumer does not drag the whole table in.
const ROUND_PAGES: usize = 2;

/// One worker of a parallel scan: a serial cursor over a contiguous
/// sub-range, charging into a private clock, plus its fetched-ahead pages.
struct ScanWorker {
    cursor: ScanCursor,
    clock: WorkerClock,
    pages: VecDeque<Vec<ResultRow>>,
    done: bool,
}

/// A region-parallel scan cursor; yields rows in global key order, exactly
/// like the serial [`ScanCursor`] it partitions.
pub struct ParScanCursor {
    inner: ParInner,
}

enum ParInner {
    /// `threads <= 1` or a single-region table: the serial cursor verbatim.
    Serial(Box<ScanCursor>),
    Parallel(ParState),
}

struct ParState {
    /// Handle bound to the shared cluster clock (the merge target).
    cluster: Cluster,
    /// Workers in key-range order.
    workers: Vec<ScanWorker>,
    threads: usize,
    /// Index of the worker currently being drained.
    current: usize,
    /// Rows ready to emit from `workers[current]`.
    buffered: std::vec::IntoIter<ResultRow>,
    /// Global row limit still unemitted (`usize::MAX` when unlimited).
    remaining: usize,
    rows_streamed: u64,
    /// Worker clocks already merged into the shared clock.
    merged: bool,
}

impl Cluster {
    /// Opens a region-parallel streaming scan over `table` using up to
    /// `threads` workers.  Yields rows in global key order; results are
    /// identical to [`Cluster::scan_stream`].  With `threads <= 1` (or a
    /// table whose regions cannot be partitioned) this *is* the serial
    /// cursor.  See the module docs for the sim-clock merge rules.
    pub fn par_scan_stream(
        &self,
        table: &str,
        scan: Scan,
        threads: usize,
    ) -> StoreResult<ParScanCursor> {
        let threads = threads.max(1);
        // Fault injection is defined on the shared timeline (outage windows
        // compare against the clock an op charges into), which parallel
        // workers' private clocks do not advance.  Rather than inject
        // incoherently, a faulty cluster scans serially — the determinism
        // contract for fault experiments is single-threaded anyway.
        if threads == 1 || self.faults_enabled() {
            return Ok(ParScanCursor {
                inner: ParInner::Serial(Box::new(self.scan_stream(table, scan)?)),
            });
        }
        if !scan.start.is_empty() && !scan.stop.is_empty() && scan.start > scan.stop {
            return Err(StoreError::InvalidRange);
        }
        let state = self.table(table)?;

        // Candidate split keys: the region start boundaries strictly inside
        // the scan range, snapshotted now.  (A later split only refines a
        // sub-range; each worker's cursor re-locates regions per page.)
        let splits: Vec<Bytes> = {
            let regions = state.regions.read();
            let mut starts: Vec<Bytes> = regions
                .iter()
                .skip(1)
                .map(|r| r.start.clone())
                .collect();
            starts.retain(|s| {
                (scan.start.is_empty() || s.as_slice() > scan.start.as_slice())
                    && (scan.stop.is_empty() || s.as_slice() < scan.stop.as_slice())
            });
            starts
        };
        let parts = threads.min(splits.len() + 1);
        if parts == 1 {
            return Ok(ParScanCursor {
                inner: ParInner::Serial(Box::new(self.scan_stream(table, scan)?)),
            });
        }

        // `parts` contiguous sub-ranges: the scan bounds plus `parts - 1`
        // split keys spread evenly across the region boundaries.
        let mut bounds: Vec<Bytes> = Vec::with_capacity(parts + 1);
        bounds.push(scan.start.clone());
        for i in 1..parts {
            bounds.push(splits[i * splits.len() / parts].clone());
        }
        bounds.push(scan.stop.clone());

        // One logical scan in the counters, no matter how many workers.
        self.record_scan_open();
        let mut workers = Vec::with_capacity(parts);
        for window in bounds.windows(2) {
            let mut sub = scan.clone();
            sub.start = window[0].clone();
            sub.stop = window[1].clone();
            let clock = WorkerClock::new();
            let handle = self.with_charge_sink(clock.clock().clone());
            let cursor = handle.scan_stream_inner(table, sub, false)?;
            workers.push(ScanWorker {
                cursor,
                clock,
                pages: VecDeque::new(),
                done: false,
            });
        }

        let remaining = if scan.limit == 0 { usize::MAX } else { scan.limit };
        Ok(ParScanCursor {
            inner: ParInner::Parallel(ParState {
                cluster: self.clone(),
                workers,
                threads,
                current: 0,
                buffered: Vec::new().into_iter(),
                remaining,
                rows_streamed: 0,
                merged: false,
            }),
        })
    }
}

impl ParScanCursor {
    /// Total rows this cursor has yielded so far.
    pub fn rows_streamed(&self) -> u64 {
        match &self.inner {
            ParInner::Serial(cursor) => cursor.rows_streamed(),
            ParInner::Parallel(state) => state.rows_streamed,
        }
    }

    /// Number of scan workers backing this cursor (1 when serial).
    pub fn workers(&self) -> usize {
        match &self.inner {
            ParInner::Serial(_) => 1,
            ParInner::Parallel(state) => state.workers.len(),
        }
    }
}

impl ParState {
    fn next_row(&mut self) -> Option<ResultRow> {
        if self.remaining == 0 {
            self.merge_clocks();
            return None;
        }
        loop {
            if let Some(row) = self.buffered.next() {
                self.rows_streamed += 1;
                self.remaining -= 1;
                if self.remaining == 0 {
                    self.merge_clocks();
                }
                return Some(row);
            }
            if self.current >= self.workers.len() {
                self.merge_clocks();
                return None;
            }
            if let Some(page) = self.workers[self.current].pages.pop_front() {
                self.buffered = page.into_iter();
            } else if self.workers[self.current].done {
                self.current += 1;
            } else {
                self.fetch_round();
            }
        }
    }

    /// One synchronous round: every unfinished worker pulls up to
    /// [`ROUND_PAGES`] pages, fanned out across the pool.  All workers
    /// advance together, so later sub-ranges prefetch while the earliest is
    /// drained and the per-worker page counts stay schedule-independent.
    /// Later workers' queues are intentionally unbounded — see the module
    /// docs ("Memory") for why capping them would serialize the scan.
    fn fetch_round(&mut self) {
        let active: Vec<&mut ScanWorker> =
            self.workers.iter_mut().filter(|w| !w.done).collect();
        pool::map(active, self.threads, |worker| {
            for _ in 0..ROUND_PAGES {
                match worker.cursor.next_page() {
                    Some(page) => worker.pages.push_back(page),
                    None => {
                        worker.done = true;
                        break;
                    }
                }
            }
        });
    }

    /// Charges the fan-out's merged elapsed time — the max of the private
    /// worker clocks — into the shared cluster clock, exactly once.
    fn merge_clocks(&mut self) {
        if self.merged {
            return;
        }
        self.merged = true;
        let elapsed = merge_elapsed(self.workers.iter().map(|w| w.clock.elapsed()));
        self.cluster.charge(elapsed);
    }
}

impl Drop for ParState {
    fn drop(&mut self) {
        // An abandoned cursor still owes the timeline the work its workers
        // actually did (a deterministic number of rounds).
        self.merge_clocks();
    }
}

impl Iterator for ParScanCursor {
    type Item = ResultRow;

    fn next(&mut self) -> Option<ResultRow> {
        match &mut self.inner {
            ParInner::Serial(cursor) => cursor.next(),
            ParInner::Parallel(state) => state.next_row(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::ops::Put;
    use crate::table::TableSchema;
    use simclock::SimDuration;

    fn loaded_cluster(rows: usize) -> Cluster {
        let c = Cluster::new(ClusterConfig {
            region_split_bytes: 2_000,
            ..ClusterConfig::default()
        });
        c.create_table(TableSchema::new("t").with_family("cf")).unwrap();
        c.bulk_load(
            "t",
            (0..rows).map(|i| Put::new(format!("r{i:05}")).with("cf", "v", vec![b'x'; 64])),
        )
        .unwrap();
        c
    }

    #[test]
    fn parallel_scan_equals_serial_scan() {
        let c = loaded_cluster(2_000);
        let serial: Vec<ResultRow> = c.scan_stream("t", Scan::all()).unwrap().collect();
        for threads in [2, 3, 4, 8] {
            let cursor = c.par_scan_stream("t", Scan::all(), threads).unwrap();
            assert!(cursor.workers() > 1, "table has regions to partition");
            let parallel: Vec<ResultRow> = cursor.collect();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn threads_one_is_the_serial_cursor_with_identical_charges() {
        let c = loaded_cluster(1_000);
        let (_, serial) = c
            .clock()
            .measure(|| c.scan_stream("t", Scan::all()).unwrap().count());
        let (_, par_one) = c
            .clock()
            .measure(|| c.par_scan_stream("t", Scan::all(), 1).unwrap().count());
        assert_eq!(serial, par_one, "threads=1 must charge byte-identically");
    }

    #[test]
    fn parallel_sim_time_is_the_worker_max_and_beats_serial() {
        let c = loaded_cluster(3_000);
        let (_, serial) = c
            .clock()
            .measure(|| c.scan_stream("t", Scan::all()).unwrap().count());
        let (_, parallel) = c
            .clock()
            .measure(|| c.par_scan_stream("t", Scan::all(), 4).unwrap().count());
        assert!(parallel > SimDuration::ZERO);
        assert!(
            parallel < serial,
            "4 workers must merge to less elapsed sim time than the serial walk \
             (parallel={parallel} serial={serial})"
        );
    }

    #[test]
    fn parallel_sim_time_is_deterministic_across_runs() {
        let deltas: Vec<SimDuration> = (0..3)
            .map(|_| {
                let c = loaded_cluster(1_500);
                let (_, elapsed) = c
                    .clock()
                    .measure(|| c.par_scan_stream("t", Scan::all(), 4).unwrap().count());
                elapsed
            })
            .collect();
        assert_eq!(deltas[0], deltas[1]);
        assert_eq!(deltas[1], deltas[2]);
    }

    #[test]
    fn limit_is_honoured_globally() {
        let c = loaded_cluster(2_000);
        let rows: Vec<ResultRow> = c
            .par_scan_stream("t", Scan::all().with_limit(37), 4)
            .unwrap()
            .collect();
        let serial: Vec<ResultRow> = c
            .scan_stream("t", Scan::all().with_limit(37))
            .unwrap()
            .collect();
        assert_eq!(rows, serial);
        assert_eq!(rows.len(), 37);
    }

    #[test]
    fn one_logical_scan_in_the_counters() {
        let c = loaded_cluster(2_000);
        let before = c.metrics().ops;
        let n = c.par_scan_stream("t", Scan::all(), 4).unwrap().count();
        let delta = c.metrics().ops.delta_since(&before);
        assert_eq!(delta.scans, 1, "a parallel scan is one logical scan");
        assert_eq!(delta.scanned_rows, n as u64, "row tally sums across workers");
    }

    #[test]
    fn abandoned_parallel_cursor_still_charges_its_rounds() {
        let c = loaded_cluster(3_000);
        let before = c.clock().now();
        {
            let mut cursor = c.par_scan_stream("t", Scan::all(), 4).unwrap();
            cursor.next();
        }
        assert!(c.clock().now() > before, "drop merges the partial worker clocks");
    }
}
