//! Write-ahead log.
//!
//! Each region server appends every mutation to a WAL before acking it, so a
//! crashed server can be replayed.  Entries carry the **full mutation
//! payload** (cells, delete scope, increment amount) plus the cell timestamp
//! the mutation was applied at, which is what makes [`Cluster::recover`]
//! (`crate::Cluster::recover`) able to rebuild region state from the log:
//! replaying synced entries in timestamp order over the last durable
//! checkpoint reproduces the exact acked-synced state.
//!
//! Group commit: [`WriteAheadLog::sync`] makes every appended record durable
//! at once, so a cluster configured with a sync interval > 1 acks writes
//! before they are durable — a crash then loses the unsynced tail
//! ([`WriteAheadLog::drop_unsynced`]), exactly like HBase with deferred log
//! flush.  The Synergy transaction layer (paper §VIII) reuses the same
//! structure for its own statement-level WAL stored in HDFS; this crate
//! therefore exposes [`WriteAheadLog`] publicly.

use crate::cell::{Bytes, Timestamp};
use crate::ops::DeleteScope;
use parking_lot::Mutex;
use std::sync::Arc;

/// The kind of mutation recorded in a WAL entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A put of the listed `(family, qualifier, value)` cells to `row`.
    Put {
        /// Row key written.
        row: Bytes,
        /// The written cells, `(family, qualifier, value)`.
        cells: Vec<(String, String, Bytes)>,
        /// Cell timestamp the put was applied at.
        timestamp: Timestamp,
    },
    /// A delete of `row` (whole row or specific columns).
    Delete {
        /// Row key deleted.
        row: Bytes,
        /// What was deleted.
        scope: DeleteScope,
        /// Logical timestamp the delete was applied at (orders it against
        /// puts during replay).
        timestamp: Timestamp,
    },
    /// An increment applied to `row`.
    Increment {
        /// Row key incremented.
        row: Bytes,
        /// Column family of the counter cell.
        family: String,
        /// Qualifier of the counter cell.
        qualifier: String,
        /// Amount added.
        amount: i64,
        /// Cell timestamp the increment was applied at.
        timestamp: Timestamp,
    },
    /// An arbitrary logical record appended by a higher layer (the Synergy
    /// transaction manager logs whole SQL statements this way).
    Logical {
        /// Opaque payload.
        payload: String,
    },
}

impl WalOp {
    /// The logical timestamp this mutation was applied at (`None` for
    /// [`WalOp::Logical`] records).  Timestamps are globally unique and
    /// monotone, so sorting entries from several server WALs by timestamp
    /// reconstructs the cluster-wide mutation order during replay.
    pub fn timestamp(&self) -> Option<Timestamp> {
        match self {
            WalOp::Put { timestamp, .. }
            | WalOp::Delete { timestamp, .. }
            | WalOp::Increment { timestamp, .. } => Some(*timestamp),
            WalOp::Logical { .. } => None,
        }
    }
}

/// One durable WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Monotonically increasing sequence number within the log.
    pub sequence: u64,
    /// Table (or logical stream) the record belongs to.
    pub table: String,
    /// Region the mutation was applied to, when known.  This is the
    /// per-region shipping offset key: replication ships each synced record
    /// to the followers of *this* region, and a rejoining replica replays
    /// the shipped stream from its last acknowledged position.  `None` for
    /// logical records and for records appended before replication existed.
    pub region: Option<u64>,
    /// The recorded mutation.
    pub op: WalOp,
    /// Whether this record has been durably synced.
    pub synced: bool,
}

/// An append-only, thread-safe write-ahead log.
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog {
    inner: Arc<Mutex<WalInner>>,
}

#[derive(Debug, Default)]
struct WalInner {
    entries: Vec<WalEntry>,
    next_sequence: u64,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record and returns its sequence number.  The record is not
    /// durable until [`WriteAheadLog::sync`] is called.
    pub fn append(&self, table: impl Into<String>, op: WalOp) -> u64 {
        let mut inner = self.inner.lock();
        let sequence = inner.next_sequence;
        inner.next_sequence += 1;
        inner.entries.push(WalEntry {
            sequence,
            table: table.into(),
            region: None,
            op,
            synced: false,
        });
        sequence
    }

    /// Appends a record tagged with the region it mutated, so replication
    /// can ship it to that region's followers once it syncs.
    pub fn append_region(&self, table: impl Into<String>, region: u64, op: WalOp) -> u64 {
        let mut inner = self.inner.lock();
        let sequence = inner.next_sequence;
        inner.next_sequence += 1;
        inner.entries.push(WalEntry {
            sequence,
            table: table.into(),
            region: Some(region),
            op,
            synced: false,
        });
        sequence
    }

    /// Appends a record that is durable immediately (used for offline bulk
    /// loads, which model a population phase that is flushed and compacted
    /// before any measurement starts).
    pub fn append_synced(&self, table: impl Into<String>, op: WalOp) -> u64 {
        let mut inner = self.inner.lock();
        let sequence = inner.next_sequence;
        inner.next_sequence += 1;
        inner.entries.push(WalEntry {
            sequence,
            table: table.into(),
            region: None,
            op,
            synced: true,
        });
        sequence
    }

    /// Marks every appended record as durable and returns how many records
    /// were newly synced (the group-commit flush).
    pub fn sync(&self) -> usize {
        let mut inner = self.inner.lock();
        inner
            .entries
            .iter_mut()
            .filter(|e| !e.synced)
            .map(|e| e.synced = true)
            .count()
    }

    /// Like [`WriteAheadLog::sync`], but returns clones of the records this
    /// flush made durable, in sequence order.  Replication hooks in here:
    /// the newly synced batch is exactly the set of records the group
    /// commit ships to follower replicas.
    pub fn sync_take_new(&self) -> Vec<WalEntry> {
        let mut inner = self.inner.lock();
        let mut newly = Vec::new();
        for entry in inner.entries.iter_mut().filter(|e| !e.synced) {
            entry.synced = true;
            newly.push(entry.clone());
        }
        newly
    }

    /// All records appended so far (synced or not), in order.
    pub fn entries(&self) -> Vec<WalEntry> {
        self.inner.lock().entries.clone()
    }

    /// Records that have not yet been marked durable.
    pub fn unsynced(&self) -> Vec<WalEntry> {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|e| !e.synced)
            .cloned()
            .collect()
    }

    /// Number of records that have not yet been marked durable (the pending
    /// group-commit batch).
    pub fn unsynced_len(&self) -> usize {
        self.inner.lock().entries.iter().filter(|e| !e.synced).count()
    }

    /// Drops every record that has not been synced and returns how many
    /// were lost.  This is what a server crash does to acked-but-unsynced
    /// writes under deferred log flush.
    pub fn drop_unsynced(&self) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner.entries.retain(|e| e.synced);
        before - inner.entries.len()
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence number the next appended record will receive.  A
    /// checkpoint that truncates up to this value drops the whole log.
    pub fn next_sequence(&self) -> u64 {
        self.inner.lock().next_sequence
    }

    /// Drops records with `sequence < up_to` (checkpoint truncation).
    pub fn truncate_before(&self, up_to: u64) {
        self.inner.lock().entries.retain(|e| e.sequence >= up_to);
    }

    /// Replays synced records in order through `apply`.  Used by the Synergy
    /// transaction-layer master when it takes over a failed slave, and by
    /// cluster recovery.
    pub fn replay(&self, mut apply: impl FnMut(&WalEntry)) -> usize {
        let inner = self.inner.lock();
        let mut replayed = 0;
        for entry in inner.entries.iter().filter(|e| e.synced) {
            apply(entry);
            replayed += 1;
        }
        replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put_op(row: &str, ts: Timestamp) -> WalOp {
        WalOp::Put {
            row: row.as_bytes().to_vec(),
            cells: vec![("cf".into(), "v".into(), b"1".to_vec())],
            timestamp: ts,
        }
    }

    #[test]
    fn append_assigns_increasing_sequences() {
        let wal = WriteAheadLog::new();
        let a = wal.append(
            "t",
            WalOp::Delete {
                row: b"r".to_vec(),
                scope: DeleteScope::Row,
                timestamp: 1,
            },
        );
        let b = wal.append("t", put_op("r", 2));
        assert!(b > a);
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
        assert_eq!(wal.entries()[1].op.timestamp(), Some(2));
    }

    #[test]
    fn sync_marks_records_durable() {
        let wal = WriteAheadLog::new();
        wal.append("t", WalOp::Logical { payload: "INSERT ...".into() });
        assert_eq!(wal.unsynced().len(), 1);
        assert_eq!(wal.unsynced_len(), 1);
        assert_eq!(wal.sync(), 1);
        assert_eq!(wal.unsynced().len(), 0);
        assert_eq!(wal.sync(), 0);
    }

    #[test]
    fn drop_unsynced_loses_only_the_tail() {
        let wal = WriteAheadLog::new();
        wal.append("t", put_op("a", 1));
        wal.sync();
        wal.append("t", put_op("b", 2));
        wal.append("t", put_op("c", 3));
        assert_eq!(wal.drop_unsynced(), 2);
        assert_eq!(wal.len(), 1);
        assert!(wal.entries()[0].synced);
        assert_eq!(wal.drop_unsynced(), 0);
    }

    #[test]
    fn sync_take_new_returns_exactly_the_newly_durable_batch() {
        let wal = WriteAheadLog::new();
        wal.append_region("t", 7, put_op("a", 1));
        wal.sync();
        wal.append_region("t", 7, put_op("b", 2));
        wal.append_region("t", 8, put_op("c", 3));
        let newly = wal.sync_take_new();
        assert_eq!(newly.len(), 2, "already-synced records are not re-shipped");
        assert_eq!(newly[0].region, Some(7));
        assert_eq!(newly[1].region, Some(8));
        assert!(newly.iter().all(|e| e.synced));
        assert!(wal.sync_take_new().is_empty());
        // Plain appends carry no region tag.
        wal.append("t", WalOp::Logical { payload: "x".into() });
        assert_eq!(wal.sync_take_new()[0].region, None);
    }

    #[test]
    fn append_synced_is_durable_immediately() {
        let wal = WriteAheadLog::new();
        wal.append_synced("t", put_op("a", 1));
        assert_eq!(wal.unsynced_len(), 0);
        assert_eq!(wal.len(), 1);
    }

    #[test]
    fn replay_visits_only_synced_entries_in_order() {
        let wal = WriteAheadLog::new();
        wal.append("t", WalOp::Logical { payload: "a".into() });
        wal.append("t", WalOp::Logical { payload: "b".into() });
        wal.sync();
        wal.append("t", WalOp::Logical { payload: "c".into() });
        let mut seen = Vec::new();
        let replayed = wal.replay(|e| {
            if let WalOp::Logical { payload } = &e.op {
                seen.push(payload.clone());
            }
        });
        assert_eq!(replayed, 2);
        assert_eq!(seen, vec!["a", "b"]);
    }

    #[test]
    fn truncate_drops_checkpointed_prefix() {
        let wal = WriteAheadLog::new();
        for i in 0..5 {
            wal.append("t", WalOp::Logical { payload: format!("{i}") });
        }
        wal.truncate_before(3);
        let remaining: Vec<u64> = wal.entries().iter().map(|e| e.sequence).collect();
        assert_eq!(remaining, vec![3, 4]);
        wal.truncate_before(wal.next_sequence());
        assert!(wal.is_empty());
        // Sequences keep increasing across a truncation.
        assert_eq!(wal.append("t", WalOp::Logical { payload: "z".into() }), 5);
    }
}
