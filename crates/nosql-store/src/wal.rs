//! Write-ahead log.
//!
//! Each region server appends every mutation to a WAL before applying it, so
//! a crashed server can be replayed.  The Synergy transaction layer (paper
//! §VIII) reuses the same structure for its own statement-level WAL stored
//! in HDFS; this crate therefore exposes [`WriteAheadLog`] publicly.

use crate::cell::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

/// The kind of mutation recorded in a WAL entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A put of `cells` cells to `row`.
    Put {
        /// Row key written.
        row: Bytes,
        /// Number of cells written.
        cells: usize,
    },
    /// A delete of `row`.
    Delete {
        /// Row key deleted.
        row: Bytes,
    },
    /// An increment applied to `row`.
    Increment {
        /// Row key incremented.
        row: Bytes,
        /// Amount added.
        amount: i64,
    },
    /// An arbitrary logical record appended by a higher layer (the Synergy
    /// transaction manager logs whole SQL statements this way).
    Logical {
        /// Opaque payload.
        payload: String,
    },
}

/// One durable WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Monotonically increasing sequence number within the log.
    pub sequence: u64,
    /// Table (or logical stream) the record belongs to.
    pub table: String,
    /// The recorded mutation.
    pub op: WalOp,
    /// Whether this record has been durably synced.
    pub synced: bool,
}

/// An append-only, thread-safe write-ahead log.
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog {
    inner: Arc<Mutex<WalInner>>,
}

#[derive(Debug, Default)]
struct WalInner {
    entries: Vec<WalEntry>,
    next_sequence: u64,
    synced_up_to: u64,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record and returns its sequence number.  The record is not
    /// durable until [`WriteAheadLog::sync`] is called.
    pub fn append(&self, table: impl Into<String>, op: WalOp) -> u64 {
        let mut inner = self.inner.lock();
        let sequence = inner.next_sequence;
        inner.next_sequence += 1;
        inner.entries.push(WalEntry {
            sequence,
            table: table.into(),
            op,
            synced: false,
        });
        sequence
    }

    /// Marks every appended record as durable and returns how many records
    /// were newly synced.
    pub fn sync(&self) -> usize {
        let mut inner = self.inner.lock();
        let newly = inner
            .entries
            .iter_mut()
            .filter(|e| !e.synced)
            .map(|e| e.synced = true)
            .count();
        inner.synced_up_to = inner.next_sequence;
        newly
    }

    /// All records appended so far (synced or not), in order.
    pub fn entries(&self) -> Vec<WalEntry> {
        self.inner.lock().entries.clone()
    }

    /// Records that have not yet been marked durable.
    pub fn unsynced(&self) -> Vec<WalEntry> {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|e| !e.synced)
            .cloned()
            .collect()
    }

    /// Number of records in the log.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops records with `sequence < up_to` (checkpoint truncation).
    pub fn truncate_before(&self, up_to: u64) {
        self.inner.lock().entries.retain(|e| e.sequence >= up_to);
    }

    /// Replays synced records in order through `apply`.  Used by the Synergy
    /// transaction-layer master when it takes over a failed slave.
    pub fn replay(&self, mut apply: impl FnMut(&WalEntry)) -> usize {
        let inner = self.inner.lock();
        let mut replayed = 0;
        for entry in inner.entries.iter().filter(|e| e.synced) {
            apply(entry);
            replayed += 1;
        }
        replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_increasing_sequences() {
        let wal = WriteAheadLog::new();
        let a = wal.append("t", WalOp::Delete { row: b"r".to_vec() });
        let b = wal.append("t", WalOp::Put { row: b"r".to_vec(), cells: 2 });
        assert!(b > a);
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
    }

    #[test]
    fn sync_marks_records_durable() {
        let wal = WriteAheadLog::new();
        wal.append("t", WalOp::Logical { payload: "INSERT ...".into() });
        assert_eq!(wal.unsynced().len(), 1);
        assert_eq!(wal.sync(), 1);
        assert_eq!(wal.unsynced().len(), 0);
        assert_eq!(wal.sync(), 0);
    }

    #[test]
    fn replay_visits_only_synced_entries_in_order() {
        let wal = WriteAheadLog::new();
        wal.append("t", WalOp::Logical { payload: "a".into() });
        wal.append("t", WalOp::Logical { payload: "b".into() });
        wal.sync();
        wal.append("t", WalOp::Logical { payload: "c".into() });
        let mut seen = Vec::new();
        let replayed = wal.replay(|e| {
            if let WalOp::Logical { payload } = &e.op {
                seen.push(payload.clone());
            }
        });
        assert_eq!(replayed, 2);
        assert_eq!(seen, vec!["a", "b"]);
    }

    #[test]
    fn truncate_drops_checkpointed_prefix() {
        let wal = WriteAheadLog::new();
        for i in 0..5 {
            wal.append("t", WalOp::Logical { payload: format!("{i}") });
        }
        wal.truncate_before(3);
        let remaining: Vec<u64> = wal.entries().iter().map(|e| e.sequence).collect();
        assert_eq!(remaining, vec![3, 4]);
    }
}
