//! Cluster metrics: operation counters and storage accounting.
//!
//! Storage accounting underlies the reproduction of the paper's Table III
//! (database sizes across evaluated systems); operation counters are used by
//! tests and the benchmark harness to explain *why* one system is slower
//! than another (e.g. how many RPCs a join issued).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts of each API operation executed by the cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    /// Number of Get operations.
    pub gets: u64,
    /// Number of Put operations.
    pub puts: u64,
    /// Number of Delete operations.
    pub deletes: u64,
    /// Number of Increment operations.
    pub increments: u64,
    /// Number of CheckAndPut operations.
    pub check_and_puts: u64,
    /// Number of Scan operations.
    pub scans: u64,
    /// Total rows returned by scans.
    pub scanned_rows: u64,
    /// Total bytes returned by scans.
    pub scanned_bytes: u64,
}

impl OpCounters {
    /// Total number of client-visible operations.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.increments + self.check_and_puts + self.scans
    }

    /// Per-field difference `self - earlier`, useful for measuring one
    /// statement's footprint.
    pub fn delta_since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            gets: self.gets - earlier.gets,
            puts: self.puts - earlier.puts,
            deletes: self.deletes - earlier.deletes,
            increments: self.increments - earlier.increments,
            check_and_puts: self.check_and_puts - earlier.check_and_puts,
            scans: self.scans - earlier.scans,
            scanned_rows: self.scanned_rows - earlier.scanned_rows,
            scanned_bytes: self.scanned_bytes - earlier.scanned_bytes,
        }
    }
}

/// The cluster's live operation counters: one [`AtomicU64`] per field so
/// parallel scan workers (and any other concurrent clients) bump metrics
/// without serializing on a mutex.  [`AtomicOpCounters::snapshot`] produces
/// the plain [`OpCounters`] the public [`ClusterMetrics`] API exposes —
/// counter *sums* are the half of the parallel merge rule that is additive
/// (elapsed sim time merges as a max; see `simclock::merge_elapsed`).
#[derive(Debug, Default)]
pub(crate) struct AtomicOpCounters {
    pub(crate) gets: AtomicU64,
    pub(crate) puts: AtomicU64,
    pub(crate) deletes: AtomicU64,
    pub(crate) increments: AtomicU64,
    pub(crate) check_and_puts: AtomicU64,
    pub(crate) scans: AtomicU64,
    pub(crate) scanned_rows: AtomicU64,
    pub(crate) scanned_bytes: AtomicU64,
}

impl AtomicOpCounters {
    /// Bumps one counter.  Relaxed ordering suffices: counters are
    /// monotonic tallies, never used to synchronize other memory.
    pub(crate) fn bump(field: &AtomicU64, by: u64) {
        field.fetch_add(by, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub(crate) fn snapshot(&self) -> OpCounters {
        OpCounters {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            increments: self.increments.load(Ordering::Relaxed),
            check_and_puts: self.check_and_puts.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            scanned_rows: self.scanned_rows.load(Ordering::Relaxed),
            scanned_bytes: self.scanned_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Region-replication counters, exposed by
/// [`crate::Cluster::replication_stats`].  All zero (and
/// `replicated_regions == 0`) when `replication_factor <= 1` — replication
/// off is the byte-identical legacy configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationStats {
    /// Configured `ClusterConfig::replication_factor`.
    pub replication_factor: usize,
    /// Regions currently tracked by the replication registry.
    pub replicated_regions: usize,
    /// Synced WAL records shipped to followers (one count per record per
    /// follower that acknowledged it in-sync).
    pub records_shipped: u64,
    /// Region failovers performed (a follower promoted to primary).
    pub failovers: u64,
    /// Catch-up replays performed by rejoining replicas (one per region a
    /// rejoining server had fallen behind on).
    pub catchup_replays: u64,
    /// Total shipped records replayed during catch-ups.
    pub catchup_records: u64,
    /// Current total follower lag: Σ (shipped − acked) over every follower
    /// of every region.  Zero when all replicas are in sync.
    pub replica_lag: u64,
}

/// Storage statistics for one table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableMetrics {
    /// Number of stored rows.
    pub rows: u64,
    /// Approximate stored bytes.
    pub bytes: u64,
    /// Number of regions the table is split into.
    pub regions: usize,
}

/// A snapshot of the whole cluster's metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Operation counters since cluster creation.
    pub ops: OpCounters,
    /// Per-table storage statistics.
    pub tables: BTreeMap<String, TableMetrics>,
}

impl ClusterMetrics {
    /// Total stored bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.bytes).sum()
    }

    /// Total stored rows across all tables.
    pub fn total_rows(&self) -> u64 {
        self.tables.values().map(|t| t.rows).sum()
    }

    /// Stored bytes for tables whose names satisfy `pred` — used to separate
    /// base tables from views and view-indexes in Table III.
    pub fn bytes_where(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.tables
            .iter()
            .filter(|(name, _)| pred(name))
            .map(|(_, t)| t.bytes)
            .sum()
    }

    /// Resident rows of one table (0 when the table is unknown).  Under
    /// partial view materialization the stored slice of a view *is* its
    /// resident slice, so for `V_*` tables this reports exactly the rows a
    /// residency budget bounds.
    pub fn resident_rows(&self, table: &str) -> u64 {
        self.tables.get(table).map(|t| t.rows).unwrap_or(0)
    }

    /// Resident bytes of one table (0 when the table is unknown; same
    /// residency reading as [`ClusterMetrics::resident_rows`]).
    pub fn resident_bytes(&self, table: &str) -> u64 {
        self.tables.get(table).map(|t| t.bytes).unwrap_or(0)
    }

    /// Per-table `(resident rows, resident bytes)` for tables whose names
    /// satisfy `pred`, in name order — the report prints this for `V_*`
    /// tables next to the residency counters.
    pub fn resident_where(&self, pred: impl Fn(&str) -> bool) -> Vec<(String, u64, u64)> {
        self.tables
            .iter()
            .filter(|(name, _)| pred(name))
            .map(|(name, t)| (name.clone(), t.rows, t.bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_tables() {
        let mut m = ClusterMetrics::default();
        m.tables.insert(
            "a".into(),
            TableMetrics {
                rows: 10,
                bytes: 100,
                regions: 1,
            },
        );
        m.tables.insert(
            "view_a".into(),
            TableMetrics {
                rows: 5,
                bytes: 50,
                regions: 1,
            },
        );
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.total_rows(), 15);
        assert_eq!(m.bytes_where(|n| n.starts_with("view_")), 50);
        assert_eq!(m.resident_rows("view_a"), 5);
        assert_eq!(m.resident_bytes("view_a"), 50);
        assert_eq!(m.resident_rows("missing"), 0);
        assert_eq!(
            m.resident_where(|n| n.starts_with("view_")),
            vec![("view_a".to_string(), 5, 50)]
        );
    }

    #[test]
    fn atomic_counters_snapshot_matches_bumps() {
        let counters = AtomicOpCounters::default();
        AtomicOpCounters::bump(&counters.gets, 3);
        AtomicOpCounters::bump(&counters.scans, 1);
        AtomicOpCounters::bump(&counters.scanned_rows, 100);
        let snap = counters.snapshot();
        assert_eq!(snap.gets, 3);
        assert_eq!(snap.scans, 1);
        assert_eq!(snap.scanned_rows, 100);
        assert_eq!(snap.total_ops(), 4);
    }

    #[test]
    fn op_counter_delta() {
        let earlier = OpCounters {
            gets: 5,
            puts: 2,
            ..OpCounters::default()
        };
        let now = OpCounters {
            gets: 9,
            puts: 2,
            scans: 1,
            scanned_rows: 100,
            ..OpCounters::default()
        };
        let delta = now.delta_since(&earlier);
        assert_eq!(delta.gets, 4);
        assert_eq!(delta.puts, 0);
        assert_eq!(delta.scans, 1);
        assert_eq!(now.total_ops(), 12);
    }
}
