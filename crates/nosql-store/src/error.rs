//! Error type shared by every store operation.

use std::fmt;

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors returned by the cluster API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named table does not exist.
    TableNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// The named column family is not declared in the table schema.
    UnknownColumnFamily {
        /// Table being accessed.
        table: String,
        /// Family that was requested.
        family: String,
    },
    /// A mutation carried no cells.
    EmptyMutation,
    /// An increment was applied to a value that is not an 8-byte integer.
    NotACounter {
        /// Row key of the offending cell.
        row: String,
        /// Qualifier of the offending cell.
        qualifier: String,
    },
    /// A scan requested an invalid key range (start > stop).
    InvalidRange,
    /// CheckAndPut condition failed (reported as a distinct error only when
    /// the caller asked for strict behaviour; normally surfaced as `false`).
    ConditionFailed,
    /// The region server hosting the addressed key is down (injected
    /// region-server crash; the server comes back after its simulated MTTR).
    /// Retryable: re-routing/backing off succeeds once the server restarts.
    RegionUnavailable {
        /// Index of the crashed region server.
        server: usize,
    },
    /// The operation's RPC timed out (injected network fault).  Retryable:
    /// the op was not applied, so a fresh attempt is safe.
    RpcTimeout {
        /// Index of the region server the timed-out RPC was addressed to.
        server: usize,
    },
    /// A transient server-side error (injected; models compaction stalls,
    /// lease churn, throttling).  Retryable.
    TransientOp {
        /// Index of the region server that raised the transient error.
        server: usize,
    },
    /// A fenced write presented a region epoch older than the region's
    /// current one: the region failed over to a replica since the writer
    /// captured its epoch, and the old primary (a "zombie") must not mutate
    /// the range it no longer owns.  **Not** retryable — the writer has to
    /// re-read the region's epoch and re-route before trying again.
    StaleRegionEpoch {
        /// Region whose epoch check failed.
        region: u64,
        /// The region's current epoch (bumped once per failover).
        current: u64,
        /// The stale epoch the writer presented.
        presented: u64,
    },
    /// The whole cluster is crashed and must be recovered with
    /// [`crate::Cluster::recover`] before serving requests.  Not retryable
    /// from the client's point of view.
    ClusterDown,
    /// A retry policy gave up after `attempts` attempts; `last` is the final
    /// error (exposed through [`std::error::Error::source`]).
    RetriesExhausted {
        /// Total attempts made (including the first).
        attempts: u32,
        /// The error the last attempt failed with.
        last: Box<StoreError>,
    },
}

impl StoreError {
    /// True if a fresh attempt of the same operation may succeed (the fault
    /// taxonomy retry policies key off): injected region-server outages,
    /// RPC timeouts and transient op errors are retryable; semantic errors
    /// (missing table, bad mutation) and a crashed cluster are not.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            StoreError::RegionUnavailable { .. }
                | StoreError::RpcTimeout { .. }
                | StoreError::TransientOp { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TableNotFound(t) => write!(f, "table not found: {t}"),
            StoreError::TableExists(t) => write!(f, "table already exists: {t}"),
            StoreError::UnknownColumnFamily { table, family } => {
                write!(f, "unknown column family {family} in table {table}")
            }
            StoreError::EmptyMutation => write!(f, "mutation contains no cells"),
            StoreError::NotACounter { row, qualifier } => {
                write!(f, "cell {row}/{qualifier} does not hold a counter value")
            }
            StoreError::InvalidRange => write!(f, "scan start key is after stop key"),
            StoreError::ConditionFailed => write!(f, "checkAndPut condition failed"),
            StoreError::RegionUnavailable { server } => {
                write!(f, "region server {server} is unavailable")
            }
            StoreError::RpcTimeout { server } => {
                write!(f, "rpc to region server {server} timed out")
            }
            StoreError::TransientOp { server } => {
                write!(f, "transient error on region server {server}")
            }
            StoreError::StaleRegionEpoch {
                region,
                current,
                presented,
            } => write!(
                f,
                "stale epoch {presented} for region {region} (current epoch {current}); \
                 the region failed over and this writer is fenced"
            ),
            StoreError::ClusterDown => write!(f, "cluster is crashed; call recover() first"),
            StoreError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_context() {
        let err = StoreError::UnknownColumnFamily {
            table: "orders".into(),
            family: "cf2".into(),
        };
        assert!(err.to_string().contains("orders"));
        assert!(err.to_string().contains("cf2"));
        assert!(StoreError::TableNotFound("x".into()).to_string().contains('x'));
    }

    #[test]
    fn retryable_taxonomy_partitions_faults_from_semantic_errors() {
        assert!(StoreError::RegionUnavailable { server: 2 }.retryable());
        assert!(StoreError::RpcTimeout { server: 0 }.retryable());
        assert!(StoreError::TransientOp { server: 1 }.retryable());
        assert!(!StoreError::ClusterDown.retryable());
        assert!(!StoreError::TableNotFound("t".into()).retryable());
        assert!(!StoreError::EmptyMutation.retryable());
        // A fenced zombie must re-read the epoch, not blindly retry.
        let stale = StoreError::StaleRegionEpoch {
            region: 4,
            current: 2,
            presented: 1,
        };
        assert!(!stale.retryable());
        let exhausted = StoreError::RetriesExhausted {
            attempts: 3,
            last: Box::new(StoreError::RpcTimeout { server: 0 }),
        };
        assert!(!exhausted.retryable());
    }

    #[test]
    fn fault_errors_render_their_server_and_epoch_context() {
        assert!(StoreError::RpcTimeout { server: 3 }.to_string().contains("server 3"));
        assert!(StoreError::TransientOp { server: 4 }.to_string().contains("server 4"));
        let stale = StoreError::StaleRegionEpoch {
            region: 7,
            current: 2,
            presented: 1,
        };
        let text = stale.to_string();
        assert!(text.contains("region 7") && text.contains("epoch 1") && text.contains("epoch 2"));
    }

    #[test]
    fn retries_exhausted_exposes_the_final_error_as_source() {
        use std::error::Error;
        let err = StoreError::RetriesExhausted {
            attempts: 5,
            last: Box::new(StoreError::RegionUnavailable { server: 1 }),
        };
        let source = err.source().expect("source chain");
        assert!(source.to_string().contains("region server 1"));
        assert!(err.to_string().contains("5 attempts"));
    }
}
