//! Error type shared by every store operation.

use std::fmt;

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors returned by the cluster API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named table does not exist.
    TableNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// The named column family is not declared in the table schema.
    UnknownColumnFamily {
        /// Table being accessed.
        table: String,
        /// Family that was requested.
        family: String,
    },
    /// A mutation carried no cells.
    EmptyMutation,
    /// An increment was applied to a value that is not an 8-byte integer.
    NotACounter {
        /// Row key of the offending cell.
        row: String,
        /// Qualifier of the offending cell.
        qualifier: String,
    },
    /// A scan requested an invalid key range (start > stop).
    InvalidRange,
    /// CheckAndPut condition failed (reported as a distinct error only when
    /// the caller asked for strict behaviour; normally surfaced as `false`).
    ConditionFailed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TableNotFound(t) => write!(f, "table not found: {t}"),
            StoreError::TableExists(t) => write!(f, "table already exists: {t}"),
            StoreError::UnknownColumnFamily { table, family } => {
                write!(f, "unknown column family {family} in table {table}")
            }
            StoreError::EmptyMutation => write!(f, "mutation contains no cells"),
            StoreError::NotACounter { row, qualifier } => {
                write!(f, "cell {row}/{qualifier} does not hold a counter value")
            }
            StoreError::InvalidRange => write!(f, "scan start key is after stop key"),
            StoreError::ConditionFailed => write!(f, "checkAndPut condition failed"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_context() {
        let err = StoreError::UnknownColumnFamily {
            table: "orders".into(),
            family: "cf2".into(),
        };
        assert!(err.to_string().contains("orders"));
        assert!(err.to_string().contains("cf2"));
        assert!(StoreError::TableNotFound("x".into()).to_string().contains('x'));
    }
}
