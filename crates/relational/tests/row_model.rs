//! Model-based property tests: the interned, segment-sharing [`Row`] must be
//! observably equivalent to the original `BTreeMap<String, Value>`
//! representation — set/get/suffix semantics, iteration order, display,
//! length and byte accounting — including after `freeze`/`join_concat`
//! introduce shared segments.

use proptest::prelude::*;
use relational::{Row, Value};
use std::collections::BTreeMap;

/// The reference implementation: exactly the pre-interning `Row` semantics.
#[derive(Default, Clone)]
struct ModelRow {
    values: BTreeMap<String, Value>,
}

impl ModelRow {
    fn set(&mut self, attribute: &str, value: Value) {
        self.values.insert(attribute.to_string(), value);
    }

    fn get(&self, attribute: &str) -> Option<&Value> {
        if let Some(v) = self.values.get(attribute) {
            return Some(v);
        }
        let bare = attribute.rsplit('.').next().unwrap_or(attribute);
        self.values
            .iter()
            .find(|(k, _)| k.rsplit('.').next().unwrap_or(k) == bare)
            .map(|(_, v)| v)
    }

    fn display(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{k}={v}"));
        }
        out.push('}');
        out
    }

    fn byte_size(&self) -> usize {
        self.values
            .iter()
            .map(|(k, v)| k.len() + v.byte_size())
            .sum()
    }
}

/// A small, collision-rich attribute-name pool: bare names plus qualified
/// variants sharing the same bare suffixes.
fn name(index: usize) -> String {
    const ALIASES: [&str; 3] = ["a", "b", "zz"];
    const BARES: [&str; 4] = ["X", "Y", "Col", "n1"];
    let bare = BARES[index % BARES.len()];
    match (index / BARES.len()) % (ALIASES.len() + 1) {
        0 => bare.to_string(),
        q => format!("{}.{}", ALIASES[q - 1], bare),
    }
}

fn value(raw: u8) -> Value {
    match raw % 4 {
        0 => Value::Null,
        1 => Value::Int(raw as i64),
        2 => Value::Float(raw as f64 / 2.0),
        _ => Value::Str(format!("s{raw}")),
    }
}

fn assert_equivalent(row: &Row, model: &ModelRow) {
    assert_eq!(row.len(), model.values.len());
    // Iteration order and content.
    let actual: Vec<(String, Value)> = row
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let expected: Vec<(String, Value)> = model
        .values
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    assert_eq!(actual, expected, "iteration must follow attribute order");
    assert_eq!(row.to_string(), model.display());
    assert_eq!(row.byte_size(), model.byte_size());
    // Lookups: every pool name (exact and suffix paths) plus unseen names.
    for i in 0..16 {
        let probe = name(i);
        assert_eq!(
            row.get(&probe),
            model.get(&probe),
            "get({probe:?}) diverged from the map model"
        );
    }
    assert_eq!(row.get("never.interned.attr"), None);
    // Unseen qualifier over a known bare suffix still suffix-matches.
    assert_eq!(row.get("qq.X"), model.get("qq.X"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary set sequences: the interned row and the map model stay
    /// observably identical.
    #[test]
    fn interned_row_matches_map_model(
        ops in proptest::collection::vec((0usize..16, proptest::prelude::any::<u8>()), 0..24)
    ) {
        let mut row = Row::new();
        let mut model = ModelRow::default();
        for (name_index, raw) in &ops {
            let attribute = name(*name_index);
            let v = value(*raw);
            row.set(&attribute, v.clone());
            model.set(&attribute, v);
        }
        assert_equivalent(&row, &model);

        // Freezing must not change any observable behaviour, only sharing.
        let mut frozen = row.clone();
        frozen.freeze();
        assert_equivalent(&frozen, &model);
        prop_assert!(frozen == row);

        // `unqualified` matches stripping + last-wins map insertion.
        let mut bare_model = ModelRow::default();
        for (k, v) in &model.values {
            bare_model.set(k.rsplit('.').next().unwrap_or(k), v.clone());
        }
        assert_equivalent(&row.unqualified(), &bare_model);
    }

    /// `join_concat` over disjoint halves behaves exactly like inserting
    /// both halves into one map, and writing through shared segments
    /// un-shares without losing attributes.
    #[test]
    fn join_concat_matches_merged_map(
        left_ops in proptest::collection::vec((0usize..8, proptest::prelude::any::<u8>()), 0..10),
        right_ops in proptest::collection::vec((0usize..8, proptest::prelude::any::<u8>()), 0..10),
        overwrite in proptest::prelude::any::<u8>(),
    ) {
        // Left uses alias pool indices as-is; right shifts names into a
        // disjoint "r." namespace.
        let mut left = Row::new();
        let mut model = ModelRow::default();
        for (i, raw) in &left_ops {
            let attribute = format!("l.{}", name(*i));
            left.set(&attribute, value(*raw));
            model.set(&attribute, value(*raw));
        }
        let mut right = Row::new();
        for (i, raw) in &right_ops {
            let attribute = format!("r.{}", name(*i));
            right.set(&attribute, value(*raw));
            model.set(&attribute, value(*raw));
        }
        left.freeze();
        right.freeze();
        let mut joined = left.join_concat(&right);
        assert_equivalent(&joined, &model);

        // A set() through the shared representation keeps map semantics.
        let target = format!("l.{}", name(0));
        joined.set(&target, value(overwrite));
        model.set(&target, value(overwrite));
        assert_equivalent(&joined, &model);
    }
}
