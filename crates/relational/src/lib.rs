//! Relational schema, value and row model.
//!
//! This crate defines the vocabulary every other component speaks:
//!
//! * [`Value`] / [`Row`] — typed attribute values and named tuples;
//! * [`Relation`], [`Index`], [`ForeignKey`], [`Schema`] — the paper's §II-A
//!   models of a relation (set of attributes with a primary key and foreign
//!   keys), a covered index, and a schema (relations + their index sets);
//! * [`SchemaGraph`] — the directed graph over relations whose edges encode
//!   key/foreign-key relationships (paper Definition 1–3), the input to
//!   Synergy's candidate-view generation;
//! * [`company`] — the running Company example of Figure 2, used throughout
//!   the paper (and this repository's tests) for exposition;
//! * row-key encoding helpers implementing the baseline transformation of
//!   §II-D (row key = delimited concatenation of primary-key values).

pub mod company;
mod graph;
pub mod intern;
mod keys;
mod row;
mod schema;
mod value;

pub use graph::{GraphEdge, SchemaGraph};
pub use intern::Symbol;
pub use keys::{decode_key, encode_key, KEY_DELIMITER};
pub use row::Row;
pub use schema::{ForeignKey, Index, Relation, Schema};
pub use value::Value;
