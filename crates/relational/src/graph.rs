//! The schema graph (paper §V, Definitions 1–3).
//!
//! Vertices are relations; a directed edge runs from a relation `Ri` to a
//! relation `Rj` when `Rj` has a foreign key referencing `PK(Ri)` — i.e.
//! edges point from the *referenced* (parent) relation to the *referencing*
//! (child) relation, exactly as drawn in the paper's Figure 4(a).  Each edge
//! carries the `(PK, FK)` attribute tuple of Definition 2.

use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A directed key/foreign-key edge from a parent relation to a child.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphEdge {
    /// The referenced (primary-key side) relation.
    pub from: String,
    /// The referencing (foreign-key side) relation.
    pub to: String,
    /// Primary-key attributes of `from`.
    pub pk: Vec<String>,
    /// Foreign-key attributes of `to` that reference `pk`.
    pub fk: Vec<String>,
}

impl GraphEdge {
    /// Human-readable `(PK, FK)` label, e.g. `(AID, EHome_AID)`.
    pub fn label(&self) -> String {
        format!("({}, {})", self.pk.join("+"), self.fk.join("+"))
    }
}

/// The directed graph of key/foreign-key relationships in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchemaGraph {
    nodes: Vec<String>,
    edges: Vec<GraphEdge>,
}

impl SchemaGraph {
    /// Builds the schema graph of Definition 1 from a schema.
    pub fn from_schema(schema: &Schema) -> SchemaGraph {
        let mut graph = SchemaGraph {
            nodes: schema.relation_names(),
            edges: Vec::new(),
        };
        for child in &schema.relations {
            for fk in &child.foreign_keys {
                if let Some(parent) = schema.relation(&fk.references) {
                    graph.edges.push(GraphEdge {
                        from: parent.name.clone(),
                        to: child.name.clone(),
                        pk: parent.primary_key.clone(),
                        fk: fk.attributes.clone(),
                    });
                }
            }
        }
        graph
    }

    /// Builds a graph from explicit nodes and edges (used by the view
    /// generation mechanism for intermediate DAGs and rooted graphs).
    pub fn from_parts(nodes: Vec<String>, edges: Vec<GraphEdge>) -> SchemaGraph {
        SchemaGraph { nodes, edges }
    }

    /// Relation names (vertices).
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Edges leaving `node` (node is the parent).
    pub fn out_edges(&self, node: &str) -> Vec<&GraphEdge> {
        self.edges.iter().filter(|e| e.from == node).collect()
    }

    /// Edges entering `node` (node is the child).
    pub fn in_edges(&self, node: &str) -> Vec<&GraphEdge> {
        self.edges.iter().filter(|e| e.to == node).collect()
    }

    /// All (possibly parallel) edges from `from` to `to`.
    pub fn edges_between(&self, from: &str, to: &str) -> Vec<&GraphEdge> {
        self.edges
            .iter()
            .filter(|e| e.from == from && e.to == to)
            .collect()
    }

    /// True if the graph contains the named node.
    pub fn has_node(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Kahn's algorithm.  Returns a topological ordering of the nodes, or
    /// `None` if the graph contains a cycle (the paper assumes the input
    /// schema is free of simple and transitive circular references).
    pub fn topological_order(&self) -> Option<Vec<String>> {
        let mut in_degree: BTreeMap<&str, usize> =
            self.nodes.iter().map(|n| (n.as_str(), 0)).collect();
        for e in &self.edges {
            if let Some(d) = in_degree.get_mut(e.to.as_str()) {
                *d += 1;
            }
        }
        let mut queue: VecDeque<&str> = self
            .nodes
            .iter()
            .map(|n| n.as_str())
            .filter(|n| in_degree[n] == 0)
            .collect();
        let mut order = Vec::new();
        let mut visited_edges: BTreeSet<usize> = BTreeSet::new();
        while let Some(node) = queue.pop_front() {
            order.push(node.to_string());
            for (idx, e) in self.edges.iter().enumerate() {
                if e.from == node && !visited_edges.contains(&idx) {
                    visited_edges.insert(idx);
                    let d = in_degree.get_mut(e.to.as_str()).expect("edge to known node");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(e.to.as_str());
                    }
                }
            }
        }
        if order.len() == self.nodes.len() {
            Some(order)
        } else {
            None
        }
    }

    /// True if the graph has no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Enumerates every simple directed path from `from` to `to` as
    /// sequences of edge indices into [`SchemaGraph::edges`].
    pub fn all_paths(&self, from: &str, to: &str) -> Vec<Vec<GraphEdge>> {
        let mut paths = Vec::new();
        let mut current: Vec<GraphEdge> = Vec::new();
        let mut visited: BTreeSet<String> = BTreeSet::new();
        visited.insert(from.to_string());
        self.dfs_paths(from, to, &mut visited, &mut current, &mut paths);
        paths
    }

    fn dfs_paths(
        &self,
        node: &str,
        target: &str,
        visited: &mut BTreeSet<String>,
        current: &mut Vec<GraphEdge>,
        paths: &mut Vec<Vec<GraphEdge>>,
    ) {
        if node == target {
            paths.push(current.clone());
            return;
        }
        for edge in self.out_edges(node) {
            if visited.contains(&edge.to) {
                continue;
            }
            visited.insert(edge.to.clone());
            current.push(edge.clone());
            self.dfs_paths(&edge.to, target, visited, current, paths);
            current.pop();
            visited.remove(&edge.to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::company;

    #[test]
    fn company_schema_graph_matches_figure_4a() {
        let schema = company::company_schema();
        let graph = SchemaGraph::from_schema(&schema);
        assert_eq!(graph.nodes().len(), 7);
        // Figure 4(a): Address has two edges to Employee (home and office)
        // and one to Dependent.
        assert_eq!(graph.edges_between("Address", "Employee").len(), 2);
        assert_eq!(graph.edges_between("Address", "Dependent").len(), 1);
        assert_eq!(graph.out_edges("Department").len(), 3);
        assert_eq!(graph.in_edges("Works_On").len(), 2);
        assert_eq!(graph.edge_count(), 9);
        assert!(graph.is_acyclic());
    }

    #[test]
    fn topological_order_respects_edges() {
        let schema = company::company_schema();
        let graph = SchemaGraph::from_schema(&schema);
        let order = graph.topological_order().unwrap();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        for e in graph.edges() {
            assert!(pos(&e.from) < pos(&e.to), "{} must precede {}", e.from, e.to);
        }
    }

    #[test]
    fn cycles_are_detected() {
        let edges = vec![
            GraphEdge {
                from: "A".into(),
                to: "B".into(),
                pk: vec!["a".into()],
                fk: vec!["b_a".into()],
            },
            GraphEdge {
                from: "B".into(),
                to: "A".into(),
                pk: vec!["b".into()],
                fk: vec!["a_b".into()],
            },
        ];
        let graph = SchemaGraph::from_parts(vec!["A".into(), "B".into()], edges);
        assert!(!graph.is_acyclic());
        assert!(graph.topological_order().is_none());
    }

    #[test]
    fn all_paths_enumerates_parallel_and_multi_hop_routes() {
        let schema = company::company_schema();
        let graph = SchemaGraph::from_schema(&schema);
        // Address reaches Employee through two parallel edges.
        assert_eq!(graph.all_paths("Address", "Employee").len(), 2);
        // Department reaches Works_On via Employee and via Project.
        let paths = graph.all_paths("Department", "Works_On");
        assert_eq!(paths.len(), 2);
        // Address reaches Works_On via either Employee edge.
        assert_eq!(graph.all_paths("Address", "Works_On").len(), 2);
        // No path in the reverse direction.
        assert!(graph.all_paths("Works_On", "Department").is_empty());
    }

    #[test]
    fn edge_label_is_pk_fk_tuple() {
        let schema = company::company_schema();
        let graph = SchemaGraph::from_schema(&schema);
        let labels: Vec<String> = graph
            .edges_between("Address", "Employee")
            .iter()
            .map(|e| e.label())
            .collect();
        assert!(labels.contains(&"(AID, EHome_AID)".to_string()));
        assert!(labels.contains(&"(AID, EOffice_AID)".to_string()));
    }
}
