//! Named tuples (rows) flowing through the query layers.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A row: an ordered mapping from attribute name to [`Value`].
///
/// Attribute names are stored fully qualified or bare depending on context;
/// [`Row::get`] falls back to suffix matching (`"e.EID"` matches `"EID"`) so
/// join outputs that prefix attributes with their relation alias remain easy
/// to consume.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Row {
    values: BTreeMap<String, Value>,
}

impl Row {
    /// Creates an empty row.
    pub fn new() -> Row {
        Row::default()
    }

    /// Builds a row from `(attribute, value)` pairs.
    pub fn from_pairs<I, K, V>(pairs: I) -> Row
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<Value>,
    {
        let mut row = Row::new();
        for (k, v) in pairs {
            row.set(k, v);
        }
        row
    }

    /// Sets an attribute value, replacing any previous value.
    pub fn set(&mut self, attribute: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.values.insert(attribute.into(), value.into());
        self
    }

    /// Builder-style [`Row::set`].
    pub fn with(mut self, attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(attribute, value);
        self
    }

    /// Looks up an attribute, first exactly and then by unqualified suffix.
    pub fn get(&self, attribute: &str) -> Option<&Value> {
        if let Some(v) = self.values.get(attribute) {
            return Some(v);
        }
        // Fall back to suffix match on the unqualified name, e.g. asking for
        // "EID" when the row holds "e.EID", or vice versa.
        let bare = attribute.rsplit('.').next().unwrap_or(attribute);
        self.values
            .iter()
            .find(|(k, _)| k.rsplit('.').next().unwrap_or(k) == bare)
            .map(|(_, v)| v)
    }

    /// True if the row has an exact or suffix match for the attribute.
    pub fn contains(&self, attribute: &str) -> bool {
        self.get(attribute).is_some()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the row holds no attributes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.values.iter()
    }

    /// Attribute names in order.
    pub fn attributes(&self) -> impl Iterator<Item = &String> {
        self.values.keys()
    }

    /// Merges another row into this one, prefixing its attributes with
    /// `prefix.` — used when concatenating join operands.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Row) {
        for (k, v) in other.iter() {
            let bare = k.rsplit('.').next().unwrap_or(k);
            self.values.insert(format!("{prefix}.{bare}"), v.clone());
        }
    }

    /// Returns a copy whose attribute names are stripped of any qualifier.
    pub fn unqualified(&self) -> Row {
        let mut row = Row::new();
        for (k, v) in self.iter() {
            let bare = k.rsplit('.').next().unwrap_or(k).to_string();
            row.values.insert(bare, v.clone());
        }
        row
    }

    /// Approximate serialized size, used for storage/transfer accounting.
    pub fn byte_size(&self) -> usize {
        self.values
            .iter()
            .map(|(k, v)| k.len() + v.byte_size())
            .sum()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl<K: Into<String>, V: Into<Value>> FromIterator<(K, V)> for Row {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Row::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_suffix_match() {
        let row = Row::new().with("e.EID", 7).with("EName", "alice");
        assert_eq!(row.get("e.EID").unwrap().as_int(), Some(7));
        assert_eq!(row.get("EID").unwrap().as_int(), Some(7));
        assert_eq!(row.get("e.EName").unwrap().as_str(), Some("alice"));
        assert!(row.get("missing").is_none());
        assert!(row.contains("EName"));
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn merge_prefixed_namespaces_attributes() {
        let left = Row::new().with("EID", 1);
        let right = Row::new().with("AID", 9).with("City", "Nashville");
        let mut joined = Row::new();
        joined.merge_prefixed("e", &left);
        joined.merge_prefixed("a", &right);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get("a.City").unwrap().as_str(), Some("Nashville"));
        assert_eq!(joined.get("e.EID").unwrap().as_int(), Some(1));
    }

    #[test]
    fn unqualified_strips_prefixes() {
        let row = Row::new().with("c.C_ID", 1).with("o.O_ID", 2);
        let bare = row.unqualified();
        assert!(bare.contains("C_ID"));
        assert!(bare.contains("O_ID"));
        assert_eq!(bare.len(), 2);
    }

    #[test]
    fn display_and_size() {
        let row = Row::new().with("a", 1).with("b", "xy");
        assert_eq!(row.to_string(), "{a=1, b='xy'}");
        assert_eq!(row.byte_size(), 1 + 8 + 1 + 2);
    }
}
