//! Named tuples (rows) flowing through the query layers.
//!
//! Attribute names are interned [`Symbol`]s (see [`crate::intern`]), so the
//! hot operations on the read path — exact lookup, suffix matching, alias
//! qualification, join concatenation — are integer compares and `Arc` clones
//! instead of `String` allocation and character-wise comparison.

use crate::intern::{self, Symbol};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

type Entry = (Symbol, Value);

/// A row: an ordered mapping from attribute name to [`Value`].
///
/// Attribute names are stored fully qualified or bare depending on context;
/// [`Row::get`] falls back to suffix matching (`"e.EID"` matches `"EID"`) so
/// join outputs that prefix attributes with their relation alias remain easy
/// to consume.
///
/// # Representation
///
/// A row is a small sorted vector of `(Symbol, Value)` entries (the typical
/// row has ≤ 30 columns) plus any number of **shared segments**: immutable
/// `Arc<[Entry]>` slices contributed by join concatenation, so the rows a
/// hash join emits share their unchanged left/right halves instead of
/// deep-cloning every matched row.  All segments hold pairwise-disjoint
/// attribute sets; iteration merges them in attribute-name order, matching
/// the former `BTreeMap<String, Value>` semantics exactly.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Row {
    /// Owned entries, sorted by attribute name.
    own: Vec<Entry>,
    /// Shared immutable segments, each sorted by attribute name and
    /// attribute-disjoint from `own` and from each other.
    shared: Vec<Arc<[Entry]>>,
}

impl Row {
    /// Creates an empty row.
    pub fn new() -> Row {
        Row::default()
    }

    /// Creates an empty row with capacity for `n` owned attributes.
    pub fn with_capacity(n: usize) -> Row {
        Row {
            own: Vec::with_capacity(n),
            shared: Vec::new(),
        }
    }

    /// Builds a row from `(attribute, value)` pairs.
    pub fn from_pairs<I, K, V>(pairs: I) -> Row
    where
        I: IntoIterator<Item = (K, V)>,
        K: AsRef<str>,
        V: Into<Value>,
    {
        let mut row = Row::new();
        for (k, v) in pairs {
            row.set(k, v);
        }
        row
    }

    /// Sets an attribute value, replacing any previous value.
    pub fn set(&mut self, attribute: impl AsRef<str>, value: impl Into<Value>) -> &mut Self {
        self.set_interned(intern::intern(attribute.as_ref()), value)
    }

    /// [`Row::set`] with a pre-interned attribute symbol — the fast path for
    /// decoders and the executor, which intern each name once per statement
    /// or table instead of once per row.
    pub fn set_interned(&mut self, sym: Symbol, value: impl Into<Value>) -> &mut Self {
        let value = value.into();
        if let Some(entry) = self.own.iter_mut().find(|e| e.0 == sym) {
            entry.1 = value;
            return self;
        }
        if let Some(i) = self
            .shared
            .iter()
            .position(|seg| seg.iter().any(|e| e.0 == sym))
        {
            // Rare: overwriting an attribute owned by a shared segment.
            // Un-share that segment into `own`, then overwrite.
            let seg = self.shared.remove(i);
            for e in seg.iter() {
                if e.0 != sym {
                    self.insert_own(e.0.clone(), e.1.clone());
                }
            }
        }
        self.insert_own(sym, value);
        self
    }

    fn insert_own(&mut self, sym: Symbol, value: Value) {
        match self
            .own
            .binary_search_by(|e| e.0.name().cmp(sym.name()))
        {
            Ok(i) => self.own[i].1 = value,
            Err(i) => self.own.insert(i, (sym, value)),
        }
    }

    /// Appends an attribute that sorts at or after every attribute already
    /// owned (debug-asserted).  Decoders walking store cells in qualifier
    /// order use this to build rows in O(1) per column; appending the same
    /// attribute again overwrites the value.
    pub fn push_sorted(&mut self, sym: Symbol, value: Value) {
        debug_assert!(
            self.shared.is_empty(),
            "push_sorted only applies to fully-owned rows"
        );
        if let Some(last) = self.own.last_mut() {
            debug_assert!(last.0.name() <= sym.name(), "push_sorted out of order");
            if last.0 == sym {
                last.1 = value;
                return;
            }
        }
        self.own.push((sym, value));
    }

    /// Builder-style [`Row::set`].
    pub fn with(mut self, attribute: impl AsRef<str>, value: impl Into<Value>) -> Self {
        self.set(attribute, value);
        self
    }

    /// Looks up an attribute, first exactly and then by unqualified suffix.
    ///
    /// The suffix fallback matches attributes whose bare name (the part
    /// after the last `.`) equals the bare name of `attribute`, e.g. asking
    /// for `"EID"` finds `"e.EID"` and vice versa.  When several attributes
    /// share the same bare suffix, the one with the **lexicographically
    /// smallest full name** wins — deterministic, and identical to the
    /// iteration order the previous `BTreeMap` representation searched in.
    pub fn get(&self, attribute: &str) -> Option<&Value> {
        match intern::lookup(attribute) {
            Some(sym) => self.get_interned(&sym),
            None => {
                // Never-interned names cannot match exactly, but their bare
                // form may still suffix-match (e.g. "z.EID" against "e.EID").
                let bare = attribute.rsplit('.').next().unwrap_or(attribute);
                let bare_sym = intern::lookup(bare)?;
                self.get_by_bare(bare_sym.bare_id())
            }
        }
    }

    /// [`Row::get`] with a pre-interned symbol (exact match, then the same
    /// deterministic suffix fallback).
    pub fn get_interned(&self, sym: &Symbol) -> Option<&Value> {
        let id = sym.id();
        if let Some(e) = self.own.iter().find(|e| e.0.id() == id) {
            return Some(&e.1);
        }
        for seg in &self.shared {
            if let Some(e) = seg.iter().find(|e| e.0.id() == id) {
                return Some(&e.1);
            }
        }
        self.get_by_bare(sym.bare_id())
    }

    /// Deterministic suffix match: among entries whose bare id equals
    /// `bare_id`, returns the one with the smallest full attribute name.
    fn get_by_bare(&self, bare_id: u32) -> Option<&Value> {
        let mut best: Option<&Entry> = None;
        for e in self.segments().flat_map(|seg| seg.iter()) {
            if e.0.bare_id() == bare_id {
                match best {
                    Some(b) if b.0.name() <= e.0.name() => {}
                    _ => best = Some(e),
                }
            }
        }
        best.map(|e| &e.1)
    }

    fn segments(&self) -> impl Iterator<Item = &[Entry]> {
        std::iter::once(self.own.as_slice()).chain(self.shared.iter().map(|s| s.as_ref()))
    }

    /// Entries of every segment, merged into attribute-name order.
    fn ordered_entries(&self) -> RowEntries<'_> {
        RowEntries {
            segments: self.segments().collect(),
        }
    }

    /// True if the row has an exact or suffix match for the attribute.
    pub fn contains(&self, attribute: &str) -> bool {
        self.get(attribute).is_some()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.own.len() + self.shared.iter().map(|s| s.len()).sum::<usize>()
    }

    /// True if the row holds no attributes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.ordered_entries().map(|e| (e.0.name(), &e.1))
    }

    /// Attribute names in order.
    pub fn attributes(&self) -> impl Iterator<Item = &str> {
        self.ordered_entries().map(|e| e.0.name())
    }

    /// Iterates over `(symbol, value)` pairs in attribute order — the
    /// zero-re-interning counterpart of [`Row::iter`] for callers that copy
    /// attributes into another row.
    pub fn iter_interned(&self) -> impl Iterator<Item = (&Symbol, &Value)> {
        self.ordered_entries().map(|e| (&e.0, &e.1))
    }

    /// Converts the owned entries into a shared segment, making subsequent
    /// [`Row::join_concat`] and [`Clone`] O(segments) instead of O(columns).
    pub fn freeze(&mut self) {
        if !self.own.is_empty() {
            let own = std::mem::take(&mut self.own);
            self.shared.push(own.into());
        }
    }

    /// Concatenates two rows with **disjoint attribute sets** (debug-
    /// asserted), sharing both operands' frozen segments instead of cloning
    /// their entries.  This is how the hash join emits result rows: the
    /// unchanged left and right halves are `Arc` slices shared by every
    /// output row they participate in.
    pub fn join_concat(&self, right: &Row) -> Row {
        debug_assert!(
            self.attributes_disjoint(right),
            "join_concat operands must have disjoint attribute sets"
        );
        let mut own = self.own.clone();
        for e in &right.own {
            own.push(e.clone());
        }
        own.sort_by(|a, b| a.0.name().cmp(b.0.name()));
        Row {
            own,
            shared: self
                .shared
                .iter()
                .chain(right.shared.iter())
                .cloned()
                .collect(),
        }
    }

    /// True if no attribute name appears in both rows.
    pub fn attributes_disjoint(&self, other: &Row) -> bool {
        for e in self.segments().flat_map(|s| s.iter()) {
            let id = e.0.id();
            if other
                .segments()
                .flat_map(|s| s.iter())
                .any(|o| o.0.id() == id)
            {
                return false;
            }
        }
        true
    }

    /// Merges another row into this one, prefixing its attributes with
    /// `prefix.` — used when concatenating join operands.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Row) {
        for e in other.ordered_entries() {
            let bare = e.0.bare_name();
            self.set(format!("{prefix}.{bare}"), e.1.clone());
        }
    }

    /// Returns a copy whose attribute names are stripped of any qualifier.
    /// When two attributes collapse to the same bare name, the value of the
    /// lexicographically larger qualified name wins (the former `BTreeMap`
    /// insertion order).
    pub fn unqualified(&self) -> Row {
        let mut row = Row::new();
        for e in self.ordered_entries() {
            row.set(e.0.bare_name(), e.1.clone());
        }
        row
    }

    /// Approximate serialized size, used for storage/transfer accounting.
    pub fn byte_size(&self) -> usize {
        self.segments()
            .flat_map(|s| s.iter())
            .map(|e| e.0.name().len() + e.1.byte_size())
            .sum()
    }
}

/// Merge iterator over a row's sorted, attribute-disjoint segments.
struct RowEntries<'a> {
    segments: Vec<&'a [Entry]>,
}

impl<'a> Iterator for RowEntries<'a> {
    type Item = &'a Entry;

    fn next(&mut self) -> Option<&'a Entry> {
        let mut best: Option<usize> = None;
        for (i, seg) in self.segments.iter().enumerate() {
            let Some(head) = seg.first() else { continue };
            match best {
                Some(b) if self.segments[b][0].0.name() <= head.0.name() => {}
                _ => best = Some(i),
            }
        }
        let b = best?;
        let (head, rest) = self.segments[b].split_first()?;
        self.segments[b] = rest;
        Some(head)
    }
}

impl PartialEq for Row {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.ordered_entries()
            .zip(other.ordered_entries())
            .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
    }
}

impl Eq for Row {}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl<K: AsRef<str>, V: Into<Value>> FromIterator<(K, V)> for Row {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Row::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_suffix_match() {
        let row = Row::new().with("e.EID", 7).with("EName", "alice");
        assert_eq!(row.get("e.EID").unwrap().as_int(), Some(7));
        assert_eq!(row.get("EID").unwrap().as_int(), Some(7));
        assert_eq!(row.get("e.EName").unwrap().as_str(), Some("alice"));
        assert!(row.get("missing").is_none());
        assert!(row.contains("EName"));
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn merge_prefixed_namespaces_attributes() {
        let left = Row::new().with("EID", 1);
        let right = Row::new().with("AID", 9).with("City", "Nashville");
        let mut joined = Row::new();
        joined.merge_prefixed("e", &left);
        joined.merge_prefixed("a", &right);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get("a.City").unwrap().as_str(), Some("Nashville"));
        assert_eq!(joined.get("e.EID").unwrap().as_int(), Some(1));
    }

    #[test]
    fn unqualified_strips_prefixes() {
        let row = Row::new().with("c.C_ID", 1).with("o.O_ID", 2);
        let bare = row.unqualified();
        assert!(bare.contains("C_ID"));
        assert!(bare.contains("O_ID"));
        assert_eq!(bare.len(), 2);
    }

    #[test]
    fn display_and_size() {
        let row = Row::new().with("a", 1).with("b", "xy");
        assert_eq!(row.to_string(), "{a=1, b='xy'}");
        assert_eq!(row.byte_size(), 1 + 8 + 1 + 2);
    }

    #[test]
    fn suffix_match_is_deterministic_smallest_name_first() {
        // Two qualified attributes share the bare suffix "X"; the winner is
        // the lexicographically smallest full name, regardless of insertion
        // order.
        let row = Row::new().with("zz.X", 1).with("aa.X", 2);
        assert_eq!(row.get("X").unwrap().as_int(), Some(2));
        assert_eq!(row.get("other.X").unwrap().as_int(), Some(2));
        // And the same via the reversed insertion order.
        let row = Row::new().with("aa.X", 2).with("zz.X", 1);
        assert_eq!(row.get("X").unwrap().as_int(), Some(2));
    }

    #[test]
    fn join_concat_shares_segments_and_merges_in_order() {
        let mut left = Row::new().with("a.A", 1).with("a.C", 3);
        let mut right = Row::new().with("b.B", 2);
        left.freeze();
        right.freeze();
        let joined = left.join_concat(&right);
        assert_eq!(joined.len(), 3);
        let names: Vec<&str> = joined.attributes().collect();
        assert_eq!(names, vec!["a.A", "a.C", "b.B"]);
        assert_eq!(joined.get("B").unwrap().as_int(), Some(2));
        // Equality must see through the segment structure.
        let flat = Row::new().with("a.A", 1).with("a.C", 3).with("b.B", 2);
        assert_eq!(joined, flat);
        assert_eq!(joined.to_string(), flat.to_string());
    }

    #[test]
    fn set_on_shared_segment_unshares_and_overwrites() {
        let mut row = Row::new().with("a.A", 1).with("a.B", 2);
        row.freeze();
        row.set("a.A", 10);
        assert_eq!(row.get("a.A").unwrap().as_int(), Some(10));
        assert_eq!(row.get("a.B").unwrap().as_int(), Some(2));
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn push_sorted_builds_rows_in_order() {
        let mut row = Row::with_capacity(3);
        for name in ["m.a", "m.b", "m.c"] {
            row.push_sorted(crate::intern::intern(name), Value::Int(1));
        }
        assert_eq!(row.len(), 3);
        assert_eq!(
            row.attributes().collect::<Vec<_>>(),
            vec!["m.a", "m.b", "m.c"]
        );
        // Re-pushing the last attribute overwrites in place.
        row.push_sorted(crate::intern::intern("m.c"), Value::Int(9));
        assert_eq!(row.len(), 3);
        assert_eq!(row.get("m.c").unwrap().as_int(), Some(9));
    }
}
