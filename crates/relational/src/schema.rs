//! Relations, indexes, foreign keys and schemas (paper §II-A).

use serde::{Deserialize, Serialize};

/// A foreign key of one relation referencing another relation's primary key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Attributes of the owning relation that form the foreign key.
    pub attributes: Vec<String>,
    /// Name of the referenced relation.
    pub references: String,
    /// Referenced (primary-key) attributes, in the same order.
    pub referenced_attributes: Vec<String>,
}

impl ForeignKey {
    /// Single-attribute foreign key (the common case in TPC-W and Company).
    pub fn simple(
        attribute: impl Into<String>,
        references: impl Into<String>,
        referenced_attribute: impl Into<String>,
    ) -> Self {
        ForeignKey {
            attributes: vec![attribute.into()],
            references: references.into(),
            referenced_attributes: vec![referenced_attribute.into()],
        }
    }
}

/// A relation: a named set of attributes with a primary key and zero or more
/// foreign keys (paper §II-A, "Relation").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    /// Relation name.
    pub name: String,
    /// All attributes.
    pub attributes: Vec<String>,
    /// Primary-key attributes, ordered.
    pub primary_key: Vec<String>,
    /// Foreign keys (the paper's F(R)).
    pub foreign_keys: Vec<ForeignKey>,
}

impl Relation {
    /// Starts building a relation.
    // Returning the builder from `new` is the crate's established entry
    // point (`Relation::new("R").attribute(..).build()`), not a constructor.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(name: impl Into<String>) -> RelationBuilder {
        RelationBuilder {
            relation: Relation {
                name: name.into(),
                attributes: Vec::new(),
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
            },
        }
    }

    /// True if the relation declares this attribute.
    pub fn has_attribute(&self, attribute: &str) -> bool {
        self.attributes.iter().any(|a| a == attribute)
    }

    /// The foreign key (if any) referencing `other`.
    pub fn foreign_key_to(&self, other: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| fk.references == other)
    }

    /// All foreign keys referencing `other` (a relation may reference the
    /// same target twice, e.g. Employee's home and office addresses).
    pub fn foreign_keys_to(&self, other: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.references == other)
            .collect()
    }
}

/// Builder for [`Relation`].
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    relation: Relation,
}

impl RelationBuilder {
    /// Adds attributes in declaration order.
    pub fn attributes<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.relation
            .attributes
            .extend(attrs.into_iter().map(Into::into));
        self
    }

    /// Declares the primary key (attributes must already be declared).
    pub fn primary_key<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.relation.primary_key = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Declares a single-attribute foreign key.
    pub fn foreign_key(
        mut self,
        attribute: impl Into<String>,
        references: impl Into<String>,
        referenced_attribute: impl Into<String>,
    ) -> Self {
        self.relation
            .foreign_keys
            .push(ForeignKey::simple(attribute, references, referenced_attribute));
        self
    }

    /// Finishes the relation, panicking on structural mistakes (undeclared
    /// key attributes), which are programming errors in schema definitions.
    pub fn build(self) -> Relation {
        let r = self.relation;
        assert!(!r.attributes.is_empty(), "relation {} has no attributes", r.name);
        assert!(!r.primary_key.is_empty(), "relation {} has no primary key", r.name);
        for pk in &r.primary_key {
            assert!(r.has_attribute(pk), "primary key {pk} not an attribute of {}", r.name);
        }
        for fk in &r.foreign_keys {
            for a in &fk.attributes {
                assert!(r.has_attribute(a), "foreign key {a} not an attribute of {}", r.name);
            }
        }
        r
    }
}

/// A covered index on a relation (paper §II-A, "Index"): `covered` ⊂ R is
/// stored in the index, and the index key is `indexed_on` ++ PK(R).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Index {
    /// Index name (unique within the schema).
    pub name: String,
    /// Relation the index belongs to.
    pub relation: String,
    /// Attributes stored in the index (the covered set X(R)).
    pub covered: Vec<String>,
    /// Attributes the index is keyed on (X_tuple(R)).
    pub indexed_on: Vec<String>,
}

impl Index {
    /// Creates an index named `name` on `relation`, keyed on `indexed_on`
    /// and covering `covered`.
    pub fn new<I, S, J, T>(
        name: impl Into<String>,
        relation: impl Into<String>,
        indexed_on: I,
        covered: J,
    ) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
        J: IntoIterator<Item = T>,
        T: Into<String>,
    {
        Index {
            name: name.into(),
            relation: relation.into(),
            indexed_on: indexed_on.into_iter().map(Into::into).collect(),
            covered: covered.into_iter().map(Into::into).collect(),
        }
    }

    /// The full index key: indexed attributes followed by the relation's
    /// primary key (deduplicated), per the paper's index model.
    pub fn key_attributes(&self, relation: &Relation) -> Vec<String> {
        let mut key = self.indexed_on.clone();
        for pk in &relation.primary_key {
            if !key.contains(pk) {
                key.push(pk.clone());
            }
        }
        key
    }
}

/// A schema: a set of relations and their index sets (paper §II-A, "Schema").
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// Relations, in declaration order.
    pub relations: Vec<Relation>,
    /// Indexes over those relations.
    pub indexes: Vec<Index>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Adds a relation.
    pub fn add_relation(&mut self, relation: Relation) -> &mut Self {
        assert!(
            self.relation(&relation.name).is_none(),
            "duplicate relation {}",
            relation.name
        );
        self.relations.push(relation);
        self
    }

    /// Adds an index; its relation must already exist.
    pub fn add_index(&mut self, index: Index) -> &mut Self {
        assert!(
            self.relation(&index.relation).is_some(),
            "index {} references unknown relation {}",
            index.name,
            index.relation
        );
        self.indexes.push(index);
        self
    }

    /// Builder-style [`Schema::add_relation`].
    pub fn with_relation(mut self, relation: Relation) -> Self {
        self.add_relation(relation);
        self
    }

    /// Builder-style [`Schema::add_index`].
    pub fn with_index(mut self, index: Index) -> Self {
        self.add_index(index);
        self
    }

    /// Looks up a relation by name (case-sensitive).
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Indexes declared on `relation` (the paper's I(R)).
    pub fn indexes_of(&self, relation: &str) -> Vec<&Index> {
        self.indexes.iter().filter(|i| i.relation == relation).collect()
    }

    /// Names of all relations in declaration order.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.iter().map(|r| r.name.clone()).collect()
    }

    /// Checks referential consistency of every foreign key: the referenced
    /// relation must exist and the referenced attributes must be its primary
    /// key.  Returns a list of human-readable problems (empty = consistent).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for r in &self.relations {
            for fk in &r.foreign_keys {
                match self.relation(&fk.references) {
                    None => problems.push(format!(
                        "{}: foreign key references unknown relation {}",
                        r.name, fk.references
                    )),
                    Some(target) => {
                        if fk.referenced_attributes != target.primary_key {
                            problems.push(format!(
                                "{}: foreign key to {} does not reference its primary key",
                                r.name, fk.references
                            ));
                        }
                        if fk.attributes.len() != fk.referenced_attributes.len() {
                            problems.push(format!(
                                "{}: foreign key to {} has mismatched attribute count",
                                r.name, fk.references
                            ));
                        }
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept() -> Relation {
        Relation::new("Department")
            .attributes(["DNo", "DName"])
            .primary_key(["DNo"])
            .build()
    }

    fn employee() -> Relation {
        Relation::new("Employee")
            .attributes(["EID", "EName", "E_DNo"])
            .primary_key(["EID"])
            .foreign_key("E_DNo", "Department", "DNo")
            .build()
    }

    #[test]
    fn builder_constructs_relation() {
        let e = employee();
        assert_eq!(e.primary_key, vec!["EID"]);
        assert!(e.has_attribute("EName"));
        assert!(e.foreign_key_to("Department").is_some());
        assert!(e.foreign_key_to("Nowhere").is_none());
    }

    #[test]
    #[should_panic(expected = "primary key")]
    fn builder_rejects_undeclared_primary_key() {
        let _ = Relation::new("Broken").attributes(["a"]).primary_key(["b"]).build();
    }

    #[test]
    fn schema_lookup_and_validation() {
        let schema = Schema::new().with_relation(dept()).with_relation(employee());
        assert!(schema.relation("Employee").is_some());
        assert!(schema.validate().is_empty());
        assert_eq!(schema.relation_names(), vec!["Department", "Employee"]);
    }

    #[test]
    fn validation_flags_dangling_foreign_key() {
        let schema = Schema::new().with_relation(employee());
        let problems = schema.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("unknown relation Department"));
    }

    #[test]
    fn validation_flags_non_pk_reference() {
        let bad_dept = Relation::new("Department")
            .attributes(["DNo", "DName"])
            .primary_key(["DName"])
            .build();
        let schema = Schema::new().with_relation(bad_dept).with_relation(employee());
        assert_eq!(schema.validate().len(), 1);
    }

    #[test]
    fn index_key_appends_primary_key() {
        let idx = Index::new("emp_by_dno", "Employee", ["E_DNo"], ["E_DNo", "EName", "EID"]);
        assert_eq!(idx.key_attributes(&employee()), vec!["E_DNo", "EID"]);
    }

    #[test]
    fn indexes_of_filters_by_relation() {
        let schema = Schema::new()
            .with_relation(dept())
            .with_relation(employee())
            .with_index(Index::new("i1", "Employee", ["E_DNo"], ["E_DNo", "EID"]))
            .with_index(Index::new("i2", "Department", ["DName"], ["DName", "DNo"]));
        assert_eq!(schema.indexes_of("Employee").len(), 1);
        assert_eq!(schema.indexes_of("Department")[0].name, "i2");
    }

    #[test]
    #[should_panic(expected = "duplicate relation")]
    fn schema_rejects_duplicate_relations() {
        let _ = Schema::new().with_relation(dept()).with_relation(dept());
    }
}
