//! The Company example database of the paper's Figure 2.
//!
//! Relations: Employee, Department, Department_Location, Project, Works_On,
//! Dependent and Address, with the key/foreign-key references drawn in
//! Figure 2.  The paper uses this schema (with roots {Address, Department})
//! to walk through the candidate-view generation mechanism; this
//! repository's tests and the `company_views` example do the same.

use crate::schema::{Index, Relation, Schema};

/// Builds the Company schema exactly as in Figure 2 of the paper.
pub fn company_schema() -> Schema {
    let address = Relation::new("Address")
        .attributes(["AID", "Street", "City", "Zip"])
        .primary_key(["AID"])
        .build();

    let employee = Relation::new("Employee")
        .attributes(["EID", "EName", "EHome_AID", "EOffice_AID", "E_DNo"])
        .primary_key(["EID"])
        .foreign_key("EHome_AID", "Address", "AID")
        .foreign_key("EOffice_AID", "Address", "AID")
        .foreign_key("E_DNo", "Department", "DNo")
        .build();

    let department = Relation::new("Department")
        .attributes(["DNo", "DName"])
        .primary_key(["DNo"])
        .build();

    let department_location = Relation::new("Department_Location")
        .attributes(["DL_DNo", "DLocation"])
        .primary_key(["DL_DNo", "DLocation"])
        .foreign_key("DL_DNo", "Department", "DNo")
        .build();

    let project = Relation::new("Project")
        .attributes(["PNo", "PName", "P_DNo"])
        .primary_key(["PNo"])
        .foreign_key("P_DNo", "Department", "DNo")
        .build();

    let works_on = Relation::new("Works_On")
        .attributes(["WO_EID", "WO_PNo", "Hours"])
        .primary_key(["WO_EID", "WO_PNo"])
        .foreign_key("WO_EID", "Employee", "EID")
        .foreign_key("WO_PNo", "Project", "PNo")
        .build();

    let dependent = Relation::new("Dependent")
        .attributes(["DP_EID", "DPName", "DPHome_AID"])
        .primary_key(["DP_EID", "DPName"])
        .foreign_key("DP_EID", "Employee", "EID")
        .foreign_key("DPHome_AID", "Address", "AID")
        .build();

    Schema::new()
        .with_relation(address)
        .with_relation(employee)
        .with_relation(department)
        .with_relation(department_location)
        .with_relation(project)
        .with_relation(works_on)
        .with_relation(dependent)
        .with_index(Index::new(
            "employee_by_dno",
            "Employee",
            ["E_DNo"],
            ["E_DNo", "EID", "EName"],
        ))
        .with_index(Index::new(
            "works_on_by_eid",
            "Works_On",
            ["WO_EID"],
            ["WO_EID", "WO_PNo", "Hours"],
        ))
}

/// The roots set the paper uses for the Company example (§V-B2):
/// `Q_company = {Address, Department}`.
pub fn company_roots() -> Vec<String> {
    vec!["Address".to_string(), "Department".to_string()]
}

/// The paper's synthetic Company workload W_company = {w1, w2, w3} (§V-B2),
/// as SQL text.  `w1` joins Employee with its home Address; `w2` joins
/// Department, Employee and Works_On; `w3` joins Employee and Works_On with
/// a filter on Hours.
pub fn company_workload_sql() -> Vec<String> {
    vec![
        "SELECT * FROM Employee AS e, Address AS a \
         WHERE a.AID = e.EHome_AID AND e.EID = ?"
            .to_string(),
        "SELECT * FROM Department AS d, Employee AS e, Works_On AS wo \
         WHERE d.DNo = e.E_DNo AND e.EID = wo.WO_EID AND d.DNo = ?"
            .to_string(),
        "SELECT * FROM Employee AS e, Works_On AS wo \
         WHERE e.EID = wo.WO_EID AND wo.Hours = ?"
            .to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn company_schema_is_consistent() {
        let schema = company_schema();
        assert_eq!(schema.relations.len(), 7);
        assert!(schema.validate().is_empty(), "{:?}", schema.validate());
    }

    #[test]
    fn employee_references_address_twice() {
        let schema = company_schema();
        let employee = schema.relation("Employee").unwrap();
        assert_eq!(employee.foreign_keys_to("Address").len(), 2);
        assert_eq!(employee.foreign_keys.len(), 3);
    }

    #[test]
    fn roots_and_workload_shapes() {
        assert_eq!(company_roots(), vec!["Address", "Department"]);
        assert_eq!(company_workload_sql().len(), 3);
    }

    #[test]
    fn composite_keys_declared() {
        let schema = company_schema();
        assert_eq!(
            schema.relation("Works_On").unwrap().primary_key,
            vec!["WO_EID", "WO_PNo"]
        );
        assert_eq!(
            schema.relation("Department_Location").unwrap().primary_key,
            vec!["DL_DNo", "DLocation"]
        );
    }
}
