//! Global attribute-name interner.
//!
//! Every attribute name flowing through the row layer (`"c_id"`,
//! `"c.c_id"`, `"SUM(ol.ol_qty)"`, ...) is interned once into an
//! append-only table of `Arc<str>` entries and afterwards handled as a
//! [`Symbol`]: a copy-cheap handle carrying the integer id of the name, the
//! id of its **bare** form (the suffix after the last `.`), and a shared
//! pointer to the name's characters.  Equality and hashing are integer
//! compares on the id; suffix matching — the workhorse of
//! [`Row::get`](crate::Row::get) — is an integer compare on `bare_id`
//! instead of a per-lookup `rsplit('.')` scan.
//!
//! The name universe is bounded: names come from relational schemas, query
//! aliases and aggregate labels, all of which are fixed per workload, so the
//! table only grows during warm-up and the interner never evicts.
//! [`lookup`] never inserts, which keeps probe-only paths (e.g. `get` with a
//! name the row cannot contain) allocation-free.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// An interned attribute name.
///
/// Two symbols are equal iff they were interned from the same string; the
/// comparison is a single integer compare.  `Ord` follows the *name's*
/// lexicographic order (not insertion order) so sorted containers of
/// symbols iterate in the same order a `BTreeMap<String, _>` would.
#[derive(Debug, Clone)]
pub struct Symbol {
    id: u32,
    bare_id: u32,
    name: Arc<str>,
}

impl Symbol {
    /// The interner id of this name.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The interner id of the bare form of this name (the suffix after the
    /// last `.`; equals [`Symbol::id`] when the name has no qualifier).
    pub fn bare_id(&self) -> u32 {
        self.bare_id
    }

    /// The interned name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bare form of the name (`"e.EID"` → `"EID"`).
    pub fn bare_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }

    /// Shared handle to the name's characters.
    pub fn name_arc(&self) -> &Arc<str> {
        &self.name
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            return std::cmp::Ordering::Equal;
        }
        self.name().cmp(other.name())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

struct Inner {
    ids: HashMap<Arc<str>, u32>,
    /// `id → (name, bare_id)`, append-only.
    entries: Vec<(Arc<str>, u32)>,
}

fn table() -> &'static RwLock<Inner> {
    static TABLE: OnceLock<RwLock<Inner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Inner {
            ids: HashMap::new(),
            entries: Vec::new(),
        })
    })
}

fn symbol_at(inner: &Inner, id: u32) -> Symbol {
    let (name, bare_id) = &inner.entries[id as usize];
    Symbol {
        id,
        bare_id: *bare_id,
        name: Arc::clone(name),
    }
}

/// Interns `name`, inserting it (and its bare form) on first sight.
pub fn intern(name: &str) -> Symbol {
    {
        let inner = table().read().expect("interner lock");
        if let Some(&id) = inner.ids.get(name) {
            return symbol_at(&inner, id);
        }
    }
    let mut inner = table().write().expect("interner lock");
    let id = intern_locked(&mut inner, name);
    symbol_at(&inner, id)
}

fn intern_locked(inner: &mut Inner, name: &str) -> u32 {
    if let Some(&id) = inner.ids.get(name) {
        return id;
    }
    let bare = name.rsplit('.').next().unwrap_or(name);
    let id = inner.entries.len() as u32;
    if bare == name {
        let shared: Arc<str> = Arc::from(name);
        inner.ids.insert(Arc::clone(&shared), id);
        inner.entries.push((shared, id));
        id
    } else {
        // The bare form never itself contains a dot, so this recurses at
        // most once; the qualified name is inserted after it.
        let bare_id = intern_locked(inner, bare);
        let id = inner.entries.len() as u32;
        let shared: Arc<str> = Arc::from(name);
        inner.ids.insert(Arc::clone(&shared), id);
        inner.entries.push((shared, bare_id));
        id
    }
}

/// Resolves `name` without inserting; `None` means the name has never been
/// interned (and therefore cannot appear in any row).
pub fn lookup(name: &str) -> Option<Symbol> {
    let inner = table().read().expect("interner lock");
    inner.ids.get(name).map(|&id| symbol_at(&inner, id))
}

/// Number of names interned so far (diagnostics / allocation tests).
pub fn interned_count() -> usize {
    table().read().expect("interner lock").entries.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_id_stable() {
        let a = intern("tst_intern.a");
        let b = intern("tst_intern.a");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.name(), "tst_intern.a");
    }

    #[test]
    fn bare_ids_connect_qualified_and_bare_names() {
        let qualified = intern("tst_bare.q.Col");
        // Interning a qualified name interns its bare form too.
        let bare = lookup("Col").expect("bare form interned alongside");
        assert_eq!(qualified.bare_id(), bare.id());
        assert_eq!(bare.bare_id(), bare.id());
        assert_eq!(qualified.bare_name(), "Col");
    }

    #[test]
    fn lookup_never_inserts() {
        let before = interned_count();
        assert!(lookup("tst_lookup_never_seen_xyz").is_none());
        assert_eq!(interned_count(), before);
    }

    #[test]
    fn symbol_order_follows_name_order() {
        // Intern out of lexicographic order; Ord must still follow names.
        let z = intern("tst_ord.z");
        let a = intern("tst_ord.a");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}
