//! Row-key encoding for the baseline relational → NoSQL transformation.
//!
//! Paper §II-D: "The row key of R′ is a delimited concatenation of the value
//! of attributes in PK(R)."  The same encoding is used for index tables and
//! for the lock tables created per root relation.

use crate::value::Value;

/// Delimiter between key components.  `\u{1}` cannot appear in workload data
/// and sorts below all printable characters, so composite keys keep the same
/// order as their components.
pub const KEY_DELIMITER: char = '\u{1}';

/// Encodes an ordered list of key attribute values into a row key.
pub fn encode_key<'a>(values: impl IntoIterator<Item = &'a Value>) -> String {
    let mut out = String::new();
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(KEY_DELIMITER);
        }
        out.push_str(&v.encode());
    }
    out
}

/// Splits a row key back into its encoded components.
pub fn decode_key(key: &str) -> Vec<String> {
    if key.is_empty() {
        return Vec::new();
    }
    key.split(KEY_DELIMITER).map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_and_composite_keys() {
        assert_eq!(encode_key([&Value::Int(42)]), "42");
        let key = encode_key([&Value::Int(1), &Value::str("a")]);
        assert_eq!(decode_key(&key), vec!["1", "a"]);
        assert!(decode_key("").is_empty());
    }

    #[test]
    fn composite_keys_preserve_component_order() {
        let k1 = encode_key([&Value::Int(1), &Value::Int(9)]);
        let k2 = encode_key([&Value::Int(1), &Value::Int(10)]);
        let k3 = encode_key([&Value::Int(2), &Value::Int(0)]);
        // Lexicographic on encoded strings keeps the (1,*) group before (2,*).
        assert!(k1 < k3);
        assert!(k2 < k3);
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary_string_components(
            parts in proptest::collection::vec("[a-zA-Z0-9_ -]{1,12}", 1..5)
        ) {
            let values: Vec<Value> = parts.iter().map(|p| Value::str(p.clone())).collect();
            let key = encode_key(values.iter());
            prop_assert_eq!(decode_key(&key), parts);
        }
    }
}
