//! Typed attribute values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single attribute value.
///
/// The type set covers what TPC-W and the Company example need: integers,
/// decimals (stored as `f64`), strings and NULL.  Values have a total order
/// (NULL sorts first, then numbers, then strings) so they can be used as
/// sort keys and row-key components.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision decimal (prices, discounts, ...).
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float if this is numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Encodes the value for storage in a NoSQL cell or row key.
    ///
    /// The encoding is human-readable (ints and floats in decimal, strings
    /// verbatim) because HBase row keys in the paper are delimited
    /// concatenations of attribute values.
    pub fn encode(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v}"),
            Value::Str(s) => s.clone(),
        }
    }

    /// Decodes a cell back into a value given the original's type as a hint.
    pub fn decode_as(&self, encoded: &str) -> Value {
        match self {
            Value::Null => Value::Null,
            Value::Int(_) => encoded.parse().map(Value::Int).unwrap_or(Value::Null),
            Value::Float(_) => encoded.parse().map(Value::Float).unwrap_or(Value::Null),
            Value::Str(_) => Value::Str(encoded.to_string()),
        }
    }

    /// Approximate serialized size in bytes, for storage accounting.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len(),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Ints and equal-valued floats must hash identically because they
            // compare equal (e.g. joins on Int(3) == Float(3.0)).
            Value::Int(v) => (*v as f64).to_bits().hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(5i64).as_int(), Some(5));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
    }

    #[test]
    fn ordering_is_total_and_sensible() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Int(2) < Value::Str("a".into()));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert_eq!(Value::Int(3), Value::Float(3.0));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_eq!(hash_of(&Value::str("abc")), hash_of(&Value::str("abc")));
    }

    #[test]
    fn encode_round_trips_with_type_hint() {
        let v = Value::Int(42);
        assert_eq!(v.decode_as(&v.encode()), v);
        let s = Value::str("hello world");
        assert_eq!(s.decode_as(&s.encode()), s);
        let f = Value::Float(1.25);
        assert_eq!(f.decode_as(&f.encode()), f);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("x").to_string(), "'x'");
    }

    proptest! {
        #[test]
        fn int_encode_decode_round_trip(v in any::<i64>()) {
            let value = Value::Int(v);
            prop_assert_eq!(value.decode_as(&value.encode()), value);
        }

        #[test]
        fn ordering_is_antisymmetric(a in any::<i64>(), b in any::<i64>()) {
            let (va, vb) = (Value::Int(a), Value::Int(b));
            prop_assert_eq!(va.cmp(&vb), vb.cmp(&va).reverse());
        }
    }
}
