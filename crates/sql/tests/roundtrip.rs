//! Property test: pretty-printing any generated SELECT statement and parsing
//! it back yields the same AST (the rewriter relies on this to hand its
//! rewritten queries to the executor as text or AST interchangeably).

use proptest::prelude::*;
use relational::Value;
use sql::{
    parse_statement, AggregateFunction, ColumnRef, Comparison, Condition, Expr, OrderKey,
    SelectItem, SelectStatement, Statement, TableRef,
};

fn identifier() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,10}".prop_map(|s| s)
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(identifier()), identifier()).prop_map(|(qualifier, column)| ColumnRef {
        qualifier,
        column,
    })
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|v| Value::Int(v as i64)),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Str),
    ]
}

fn comparison() -> impl Strategy<Value = Comparison> {
    prop_oneof![
        Just(Comparison::Eq),
        Just(Comparison::NotEq),
        Just(Comparison::Lt),
        Just(Comparison::LtEq),
        Just(Comparison::Gt),
        Just(Comparison::GtEq),
    ]
}

fn condition() -> impl Strategy<Value = Condition> {
    (
        column_ref(),
        comparison(),
        prop_oneof![
            literal().prop_map(Expr::Literal),
            column_ref().prop_map(Expr::Column),
        ],
    )
        .prop_map(|(left, op, right)| Condition { left, op, right })
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        Just(SelectItem::Wildcard),
        column_ref().prop_map(|column| SelectItem::Column {
            column,
            alias: None
        }),
        (column_ref(), identifier()).prop_map(|(argument, alias)| SelectItem::Aggregate {
            function: AggregateFunction::Sum,
            argument: Some(argument),
            alias: Some(alias),
        }),
    ]
}

fn select_statement() -> impl Strategy<Value = SelectStatement> {
    (
        proptest::collection::vec(select_item(), 1..4),
        proptest::collection::vec((identifier(), identifier()), 1..4),
        proptest::collection::vec(condition(), 0..4),
        proptest::collection::vec(column_ref(), 0..2),
        proptest::collection::vec(
            (column_ref(), any::<bool>()).prop_map(|(column, descending)| OrderKey {
                column,
                descending,
            }),
            0..2,
        ),
        proptest::option::of(0usize..1000),
    )
        .prop_map(|(items, from, conditions, group_by, order_by, limit)| SelectStatement {
            items,
            from: from
                .into_iter()
                .map(|(table, alias)| TableRef::aliased(table, alias))
                .collect(),
            conditions,
            group_by,
            order_by,
            limit,
        })
}

/// Identifiers that collide with SQL keywords cannot round-trip through the
/// textual form (e.g. a table aliased literally as `WHERE`); the generator
/// keeps them out of the comparison.
fn uses_reserved_word(statement: &SelectStatement) -> bool {
    const RESERVED: [&str; 14] = [
        "SELECT", "FROM", "WHERE", "AND", "AS", "ORDER", "GROUP", "BY", "LIMIT", "DESC", "ASC",
        "NULL", "VALUES", "ON",
    ];
    let is_reserved = |s: &str| RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r));
    statement.from.iter().any(|t| is_reserved(&t.table) || is_reserved(&t.alias))
        || statement.conditions.iter().any(|c| {
            is_reserved(&c.left.column)
                || c.left.qualifier.as_deref().map(is_reserved).unwrap_or(false)
                || matches!(&c.right, Expr::Column(col) if is_reserved(&col.column)
                    || col.qualifier.as_deref().map(is_reserved).unwrap_or(false))
        })
        || statement.items.iter().any(|i| match i {
            SelectItem::Column { column, alias } => {
                is_reserved(&column.column)
                    || column.qualifier.as_deref().map(is_reserved).unwrap_or(false)
                    || alias.as_deref().map(is_reserved).unwrap_or(false)
            }
            SelectItem::Aggregate { argument, alias, .. } => {
                argument
                    .as_ref()
                    .map(|a| {
                        is_reserved(&a.column)
                            || a.qualifier.as_deref().map(is_reserved).unwrap_or(false)
                    })
                    .unwrap_or(false)
                    || alias.as_deref().map(is_reserved).unwrap_or(false)
            }
            SelectItem::Wildcard => false,
        })
        || statement.group_by.iter().any(|c| is_reserved(&c.column))
        || statement
            .order_by
            .iter()
            .any(|k| is_reserved(&k.column.column)
                || k.column.qualifier.as_deref().map(is_reserved).unwrap_or(false))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn select_statements_round_trip_through_text(statement in select_statement()) {
        prop_assume!(!uses_reserved_word(&statement));
        let text = Statement::Select(statement.clone()).to_string();
        let reparsed = parse_statement(&text)
            .unwrap_or_else(|e| panic!("could not reparse {text:?}: {e}"));
        prop_assert_eq!(Statement::Select(statement), reparsed, "text was {}", text);
    }
}

#[test]
fn strip_explain_detects_the_directive_token_aware() {
    assert_eq!(
        sql::strip_explain("EXPLAIN SELECT * FROM t"),
        Some("SELECT * FROM t")
    );
    assert_eq!(
        sql::strip_explain("  explain\tSELECT 1"),
        Some("SELECT 1")
    );
    // Word boundary: identifiers starting with the keyword do not match.
    assert_eq!(sql::strip_explain("EXPLAINX"), None);
    assert_eq!(sql::strip_explain("EXPLAIN_T"), None);
    assert_eq!(sql::strip_explain("SELECT * FROM t"), None);
    assert_eq!(sql::strip_explain("EXPLAIN"), None);
    // Non-ASCII input must not panic (byte 7 may not be a char boundary).
    assert_eq!(sql::strip_explain("ééééSELECT 1"), None);
    assert_eq!(sql::strip_explain("é"), None);
}
