//! The SQL abstract syntax tree.

use relational::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to a table in a FROM clause, with its alias.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    /// Underlying table (relation or view) name.
    pub table: String,
    /// Alias used in the query (defaults to the table name).
    pub alias: String,
}

impl TableRef {
    /// A table reference whose alias equals the table name.
    pub fn named(table: impl Into<String>) -> Self {
        let table = table.into();
        TableRef {
            alias: table.clone(),
            table,
        }
    }

    /// A table reference with an explicit alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: alias.into(),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.alias == self.table {
            write!(f, "{}", self.table)
        } else {
            write!(f, "{} AS {}", self.table, self.alias)
        }
    }
}

/// A (possibly qualified) column reference, e.g. `c.c_id` or `i_title`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table alias qualifier, if written.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            column: column.into(),
        }
    }

    /// A qualified column.
    pub fn qualified(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }

    /// The fully qualified name, e.g. `c.c_id`, or just the column when
    /// unqualified.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.qualified_name())
    }
}

/// A scalar expression: a column, a literal or a `?` parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference (a join condition when it appears on the right of a
    /// comparison whose left side is also a column of another table).
    Column(ColumnRef),
    /// Literal value.
    Literal(Value),
    /// Positional `?` parameter (0-based).
    Parameter(usize),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Parameter(_) => write!(f, "?"),
        }
    }
}

/// Comparison operators supported in WHERE clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl Comparison {
    /// Evaluates the comparison on two values using SQL semantics
    /// (comparisons involving NULL are false).
    pub fn evaluate(&self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            Comparison::Eq => left == right,
            Comparison::NotEq => left != right,
            Comparison::Lt => left < right,
            Comparison::LtEq => left <= right,
            Comparison::Gt => left > right,
            Comparison::GtEq => left >= right,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Eq => "=",
            Comparison::NotEq => "<>",
            Comparison::Lt => "<",
            Comparison::LtEq => "<=",
            Comparison::Gt => ">",
            Comparison::GtEq => ">=",
        };
        write!(f, "{s}")
    }
}

/// One conjunct of a WHERE clause: `left op right`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Left-hand column.
    pub left: ColumnRef,
    /// Comparison operator.
    pub op: Comparison,
    /// Right-hand expression.
    pub right: Expr,
}

impl Condition {
    /// True if this is an equi-join condition (`col = col` across two table
    /// references).
    pub fn is_equi_join(&self) -> bool {
        self.op == Comparison::Eq && matches!(self.right, Expr::Column(_))
    }

    /// True if this condition compares a column against a literal or
    /// parameter (a filter).
    pub fn is_filter(&self) -> bool {
        !matches!(self.right, Expr::Column(_))
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// Aggregate functions in select lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateFunction {
    /// `COUNT(*)` or `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain column, optionally aliased.
    Column {
        /// The projected column.
        column: ColumnRef,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
    /// An aggregate, optionally aliased.
    Aggregate {
        /// The aggregate function.
        function: AggregateFunction,
        /// Argument column; `None` means `*` (only valid for COUNT).
        argument: Option<ColumnRef>,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Column { column, alias } => match alias {
                Some(a) => write!(f, "{column} AS {a}"),
                None => write!(f, "{column}"),
            },
            SelectItem::Aggregate {
                function,
                argument,
                alias,
            } => {
                match argument {
                    Some(col) => write!(f, "{function}({col})")?,
                    None => write!(f, "{function}(*)")?,
                }
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderKey {
    /// Column to sort on.
    pub column: ColumnRef,
    /// True for `DESC`.
    pub descending: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStatement {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM clause table references (comma-join style).
    pub from: Vec<TableRef>,
    /// WHERE conjuncts (implicitly ANDed); empty = no WHERE clause.
    pub conditions: Vec<Condition>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// The equi-join conditions of the WHERE clause.
    pub fn join_conditions(&self) -> Vec<&Condition> {
        self.conditions.iter().filter(|c| c.is_equi_join()).collect()
    }

    /// The filter (column vs literal/parameter) conditions.
    pub fn filter_conditions(&self) -> Vec<&Condition> {
        self.conditions.iter().filter(|c| c.is_filter()).collect()
    }

    /// True if the statement joins two or more table references.
    pub fn is_join_query(&self) -> bool {
        self.from.len() > 1
    }

    /// Resolves a table alias to its underlying table name.
    pub fn resolve_alias(&self, alias: &str) -> Option<&str> {
        self.from
            .iter()
            .find(|t| t.alias == alias)
            .map(|t| t.table.as_str())
    }

    /// True if any select item is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }))
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if !self.conditions.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", k.column)?;
                if k.descending {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

/// An INSERT statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertStatement {
    /// Target table.
    pub table: String,
    /// Column list.
    pub columns: Vec<String>,
    /// Values (same arity as `columns`).
    pub values: Vec<Expr>,
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStatement {
    /// Target table.
    pub table: String,
    /// `SET column = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// WHERE conjuncts.
    pub conditions: Vec<Condition>,
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteStatement {
    /// Target table.
    pub table: String,
    /// WHERE conjuncts.
    pub conditions: Vec<Condition>,
}

/// Any supported SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// SELECT.
    Select(SelectStatement),
    /// INSERT.
    Insert(InsertStatement),
    /// UPDATE.
    Update(UpdateStatement),
    /// DELETE.
    Delete(DeleteStatement),
}

impl Statement {
    /// True for SELECT statements.
    pub fn is_read(&self) -> bool {
        matches!(self, Statement::Select(_))
    }

    /// True for INSERT/UPDATE/DELETE statements.
    pub fn is_write(&self) -> bool {
        !self.is_read()
    }

    /// The SELECT body, if this is a SELECT.
    pub fn as_select(&self) -> Option<&SelectStatement> {
        match self {
            Statement::Select(s) => Some(s),
            _ => None,
        }
    }

    /// The table a write statement targets (`None` for SELECT).
    pub fn write_target(&self) -> Option<&str> {
        match self {
            Statement::Insert(i) => Some(&i.table),
            Statement::Update(u) => Some(&u.table),
            Statement::Delete(d) => Some(&d.table),
            Statement::Select(_) => None,
        }
    }

    /// The key-attribute equality filters of a write statement's WHERE
    /// clause (`column = literal/parameter`), used by the paper's baseline
    /// workload transformation which only admits writes that specify every
    /// key attribute.
    pub fn write_key_filters(&self) -> Vec<&Condition> {
        let conditions = match self {
            Statement::Update(u) => &u.conditions,
            Statement::Delete(d) => &d.conditions,
            _ => return Vec::new(),
        };
        conditions
            .iter()
            .filter(|c| c.op == Comparison::Eq && c.is_filter())
            .collect()
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert(i) => {
                write!(f, "INSERT INTO {} (", i.table)?;
                for (n, c) in i.columns.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ") VALUES (")?;
                for (n, v) in i.values.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Statement::Update(u) => {
                write!(f, "UPDATE {} SET ", u.table)?;
                for (n, (c, v)) in u.assignments.iter().enumerate() {
                    if n > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {v}")?;
                }
                if !u.conditions.is_empty() {
                    write!(f, " WHERE ")?;
                    for (n, c) in u.conditions.iter().enumerate() {
                        if n > 0 {
                            write!(f, " AND ")?;
                        }
                        write!(f, "{c}")?;
                    }
                }
                Ok(())
            }
            Statement::Delete(d) => {
                write!(f, "DELETE FROM {}", d.table)?;
                if !d.conditions.is_empty() {
                    write!(f, " WHERE ")?;
                    for (n, c) in d.conditions.iter().enumerate() {
                        if n > 0 {
                            write!(f, " AND ")?;
                        }
                        write!(f, "{c}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_classification() {
        let join = Condition {
            left: ColumnRef::qualified("c", "c_id"),
            op: Comparison::Eq,
            right: Expr::Column(ColumnRef::qualified("o", "o_c_id")),
        };
        assert!(join.is_equi_join());
        assert!(!join.is_filter());
        let filter = Condition {
            left: ColumnRef::bare("i_subject"),
            op: Comparison::Eq,
            right: Expr::Parameter(0),
        };
        assert!(filter.is_filter());
        assert!(!filter.is_equi_join());
        let non_equi = Condition {
            left: ColumnRef::bare("a"),
            op: Comparison::Lt,
            right: Expr::Column(ColumnRef::bare("b")),
        };
        assert!(!non_equi.is_equi_join());
    }

    #[test]
    fn comparison_semantics_with_null() {
        assert!(Comparison::Eq.evaluate(&Value::Int(1), &Value::Int(1)));
        assert!(Comparison::Lt.evaluate(&Value::Int(1), &Value::Int(2)));
        assert!(!Comparison::Eq.evaluate(&Value::Null, &Value::Null));
        assert!(Comparison::NotEq.evaluate(&Value::str("a"), &Value::str("b")));
        assert!(Comparison::GtEq.evaluate(&Value::Float(2.0), &Value::Int(2)));
    }

    #[test]
    fn statement_roles() {
        let select = Statement::Select(SelectStatement {
            items: vec![SelectItem::Wildcard],
            from: vec![TableRef::named("t")],
            conditions: vec![],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        });
        assert!(select.is_read());
        let insert = Statement::Insert(InsertStatement {
            table: "t".into(),
            columns: vec!["a".into()],
            values: vec![Expr::Parameter(0)],
        });
        assert!(insert.is_write());
        assert_eq!(insert.write_target(), Some("t"));
    }

    #[test]
    fn display_round_trips_visually() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Wildcard,
                SelectItem::Aggregate {
                    function: AggregateFunction::Sum,
                    argument: Some(ColumnRef::bare("ol_qty")),
                    alias: Some("total".into()),
                },
            ],
            from: vec![TableRef::aliased("Orders", "o"), TableRef::named("Customer")],
            conditions: vec![Condition {
                left: ColumnRef::qualified("o", "o_id"),
                op: Comparison::Eq,
                right: Expr::Parameter(0),
            }],
            group_by: vec![ColumnRef::bare("o_id")],
            order_by: vec![OrderKey {
                column: ColumnRef::bare("total"),
                descending: true,
            }],
            limit: Some(5),
        };
        let text = stmt.to_string();
        assert!(text.starts_with("SELECT *, SUM(ol_qty) AS total FROM Orders AS o, Customer"));
        assert!(text.contains("WHERE o.o_id = ?"));
        assert!(text.contains("GROUP BY o_id"));
        assert!(text.contains("ORDER BY total DESC"));
        assert!(text.ends_with("LIMIT 5"));
    }
}
