//! A hand-written SQL lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Quoted string literal (quotes stripped, `''` unescaped).
    String(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    /// `?` positional parameter.
    Question,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Integer(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Question => write!(f, "?"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
        }
    }
}

/// A lexing error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error occurred.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Question);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected '=' after '!'".into(),
                        position: i,
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut value = String::new();
                let start = i;
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        // '' escapes a single quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            value.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    value.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Token::String(value));
            }
            c if c.is_ascii_digit() || (c == '-' && starts_number(bytes, i)) => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || (bytes[i] == b'.' && !is_float && next_is_digit(bytes, i)))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| LexError {
                        message: format!("invalid float literal {text}"),
                        position: start,
                    })?));
                } else {
                    tokens.push(Token::Integer(text.parse().map_err(|_| LexError {
                        message: format!("invalid integer literal {text}"),
                        position: start,
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    position: i,
                })
            }
        }
    }
    Ok(tokens)
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()
}

/// A '-' starts a number only when followed by a digit (we do not support
/// arithmetic expressions, so this is unambiguous).
fn starts_number(bytes: &[u8], i: usize) -> bool {
    next_is_digit(bytes, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_simple_select() {
        let tokens = tokenize("SELECT * FROM t WHERE a = 5").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("SELECT".into()),
                Token::Star,
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("a".into()),
                Token::Eq,
                Token::Integer(5),
            ]
        );
    }

    #[test]
    fn tokenizes_operators_strings_and_params() {
        let tokens = tokenize("a <> 'it''s' AND b >= ? AND c <= -2.5").unwrap();
        assert!(tokens.contains(&Token::NotEq));
        assert!(tokens.contains(&Token::String("it's".into())));
        assert!(tokens.contains(&Token::Question));
        assert!(tokens.contains(&Token::GtEq));
        assert!(tokens.contains(&Token::LtEq));
        assert!(tokens.contains(&Token::Float(-2.5)));
    }

    #[test]
    fn reports_unterminated_string() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn reports_unexpected_character() {
        let err = tokenize("SELECT #").unwrap_err();
        assert!(err.message.contains('#'));
    }

    #[test]
    fn qualified_names_and_bang_equals() {
        let tokens = tokenize("o.ol_i_id != i.i_id").unwrap();
        assert_eq!(tokens[1], Token::Dot);
        assert!(tokens.contains(&Token::NotEq));
    }
}
