//! Recursive-descent parser producing the [`crate::ast`] types.

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token};
use relational::Value;
use std::fmt;

/// A parse error (including lexing errors).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// Parses a single SQL statement.
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let statement = parser.parse_statement()?;
    if !parser.at_end() {
        return Err(ParseError::new(format!(
            "unexpected trailing token {:?}",
            parser.peek()
        )));
    }
    Ok(statement)
}

/// Parses every statement of a workload (one statement per input string).
pub fn parse_workload<'a>(
    statements: impl IntoIterator<Item = &'a str>,
) -> Result<Vec<Statement>, ParseError> {
    statements.into_iter().map(parse_statement).collect()
}

/// Detects a leading `EXPLAIN` keyword and returns the statement text that
/// follows it, or `None` when the input is a plain statement.
///
/// `EXPLAIN` is not part of the [`Statement`] AST — it is a session-level
/// directive (the plan is rendered instead of executed), so engines strip
/// it here and route the inner text through their planner's `explain`
/// entry point.
///
/// ```
/// assert_eq!(sql::strip_explain("  explain SELECT * FROM t"), Some("SELECT * FROM t"));
/// assert_eq!(sql::strip_explain("SELECT * FROM t"), None);
/// assert_eq!(sql::strip_explain("EXPLAINX"), None);
/// ```
pub fn strip_explain(input: &str) -> Option<&str> {
    let trimmed = input.trim_start();
    let keyword_len = "EXPLAIN".len();
    // `get` returns None when the range is out of bounds *or* not a char
    // boundary (non-ASCII input), so arbitrary SQL text never panics here.
    let head = trimmed.get(..keyword_len)?;
    let rest = &trimmed[keyword_len..];
    if !head.eq_ignore_ascii_case("EXPLAIN") {
        return None;
    }
    // The keyword must end at a word boundary ("EXPLAINX" is an
    // identifier), and bare "EXPLAIN" with no statement is not a directive.
    match rest.chars().next() {
        None => None,
        Some(c) if c.is_ascii_alphanumeric() || c == '_' => None,
        Some(_) => Some(rest.trim_start()),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        token
    }

    fn peek_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(keyword))
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.peek_keyword(keyword) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        if self.eat_keyword(keyword) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected keyword {keyword}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected {token:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_identifier(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!("expected identifier, found {other:?}"))),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_keyword("SELECT") {
            Ok(Statement::Select(self.parse_select()?))
        } else if self.peek_keyword("INSERT") {
            Ok(Statement::Insert(self.parse_insert()?))
        } else if self.peek_keyword("UPDATE") {
            Ok(Statement::Update(self.parse_update()?))
        } else if self.peek_keyword("DELETE") {
            Ok(Statement::Delete(self.parse_delete()?))
        } else {
            Err(ParseError::new(format!(
                "expected SELECT/INSERT/UPDATE/DELETE, found {:?}",
                self.peek()
            )))
        }
    }

    fn parse_select(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.parse_table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.parse_table_ref()?);
        }
        let mut conditions = Vec::new();
        if self.eat_keyword("WHERE") {
            conditions.push(self.parse_condition()?);
            while self.eat_keyword("AND") {
                conditions.push(self.parse_condition()?);
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_column_ref()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.parse_column_ref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let column = self.parse_column_ref()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { column, descending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(Token::Integer(n)) if n >= 0 => limit = Some(n as usize),
                other => {
                    return Err(ParseError::new(format!(
                        "expected non-negative integer after LIMIT, found {other:?}"
                    )))
                }
            }
        }
        Ok(SelectStatement {
            items,
            from,
            conditions,
            group_by,
            order_by,
            limit,
        })
    }

    fn aggregate_function(name: &str) -> Option<AggregateFunction> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateFunction::Count),
            "SUM" => Some(AggregateFunction::Sum),
            "AVG" => Some(AggregateFunction::Avg),
            "MIN" => Some(AggregateFunction::Min),
            "MAX" => Some(AggregateFunction::Max),
            _ => None,
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate: IDENT '(' ...
        if let (Some(Token::Ident(name)), Some(Token::LParen)) =
            (self.peek().cloned(), self.tokens.get(self.pos + 1))
        {
            if let Some(function) = Self::aggregate_function(&name) {
                self.pos += 2; // consume name and '('
                let argument = if self.eat(&Token::Star) {
                    None
                } else {
                    Some(self.parse_column_ref()?)
                };
                self.expect(&Token::RParen)?;
                let alias = self.parse_optional_alias()?;
                return Ok(SelectItem::Aggregate {
                    function,
                    argument,
                    alias,
                });
            }
        }
        let column = self.parse_column_ref()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Column { column, alias })
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword("AS") {
            Ok(Some(self.expect_identifier()?))
        } else {
            Ok(None)
        }
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.expect_identifier()?;
        // Alias: either `AS alias` or a bare identifier that is not a clause
        // keyword.
        if self.eat_keyword("AS") {
            let alias = self.expect_identifier()?;
            return Ok(TableRef::aliased(table, alias));
        }
        if let Some(Token::Ident(next)) = self.peek() {
            const CLAUSE_KEYWORDS: [&str; 7] =
                ["WHERE", "GROUP", "ORDER", "LIMIT", "ON", "AND", "AS"];
            if !CLAUSE_KEYWORDS
                .iter()
                .any(|k| next.eq_ignore_ascii_case(k))
            {
                let alias = next.clone();
                self.pos += 1;
                return Ok(TableRef::aliased(table, alias));
            }
        }
        Ok(TableRef::named(table))
    }

    fn parse_column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.expect_identifier()?;
        if self.eat(&Token::Dot) {
            let column = self.expect_identifier()?;
            Ok(ColumnRef::qualified(first, column))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn parse_condition(&mut self) -> Result<Condition, ParseError> {
        let left = self.parse_column_ref()?;
        let op = match self.advance() {
            Some(Token::Eq) => Comparison::Eq,
            Some(Token::NotEq) => Comparison::NotEq,
            Some(Token::Lt) => Comparison::Lt,
            Some(Token::LtEq) => Comparison::LtEq,
            Some(Token::Gt) => Comparison::Gt,
            Some(Token::GtEq) => Comparison::GtEq,
            other => {
                return Err(ParseError::new(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let right = self.parse_expr()?;
        Ok(Condition { left, op, right })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Question) => {
                self.pos += 1;
                let index = self.params;
                self.params += 1;
                Ok(Expr::Parameter(index))
            }
            Some(Token::Integer(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Some(Token::String(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Ident(_)) => Ok(Expr::Column(self.parse_column_ref()?)),
            other => Err(ParseError::new(format!("expected expression, found {other:?}"))),
        }
    }

    fn parse_insert(&mut self) -> Result<InsertStatement, ParseError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_identifier()?;
        self.expect(&Token::LParen)?;
        let mut columns = vec![self.expect_identifier()?];
        while self.eat(&Token::Comma) {
            columns.push(self.expect_identifier()?);
        }
        self.expect(&Token::RParen)?;
        self.expect_keyword("VALUES")?;
        self.expect(&Token::LParen)?;
        let mut values = vec![self.parse_expr()?];
        while self.eat(&Token::Comma) {
            values.push(self.parse_expr()?);
        }
        self.expect(&Token::RParen)?;
        if columns.len() != values.len() {
            return Err(ParseError::new(format!(
                "INSERT into {table}: {} columns but {} values",
                columns.len(),
                values.len()
            )));
        }
        Ok(InsertStatement {
            table,
            columns,
            values,
        })
    }

    fn parse_update(&mut self) -> Result<UpdateStatement, ParseError> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_identifier()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.expect_identifier()?;
            self.expect(&Token::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((column, value));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut conditions = Vec::new();
        if self.eat_keyword("WHERE") {
            conditions.push(self.parse_condition()?);
            while self.eat_keyword("AND") {
                conditions.push(self.parse_condition()?);
            }
        }
        Ok(UpdateStatement {
            table,
            assignments,
            conditions,
        })
    }

    fn parse_delete(&mut self) -> Result<DeleteStatement, ParseError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_identifier()?;
        let mut conditions = Vec::new();
        if self.eat_keyword("WHERE") {
            conditions.push(self.parse_condition()?);
            while self.eat_keyword("AND") {
                conditions.push(self.parse_condition()?);
            }
        }
        Ok(DeleteStatement { table, conditions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_micro_benchmark_join() {
        let stmt = parse_statement(
            "SELECT * FROM Customer as c, Orders as o, Order_line as ol \
             WHERE c.c_id = o.o_c_id and o.o_id = ol.ol_o_id",
        )
        .unwrap();
        let select = stmt.as_select().unwrap();
        assert_eq!(select.from.len(), 3);
        assert_eq!(select.join_conditions().len(), 2);
        assert!(select.filter_conditions().is_empty());
        assert_eq!(select.resolve_alias("ol"), Some("Order_line"));
    }

    #[test]
    fn parses_filters_order_group_limit() {
        let stmt = parse_statement(
            "SELECT i.i_id, SUM(ol.ol_qty) AS qty FROM Item i, Order_line ol \
             WHERE i.i_id = ol.ol_i_id AND i.i_subject = ? AND ol.ol_qty >= 2 \
             GROUP BY i.i_id ORDER BY qty DESC, i.i_id LIMIT 50",
        )
        .unwrap();
        let select = stmt.as_select().unwrap();
        assert!(select.has_aggregates());
        assert_eq!(select.group_by.len(), 1);
        assert_eq!(select.order_by.len(), 2);
        assert!(select.order_by[0].descending);
        assert!(!select.order_by[1].descending);
        assert_eq!(select.limit, Some(50));
        assert_eq!(select.filter_conditions().len(), 2);
    }

    #[test]
    fn parses_self_join_with_not_equals() {
        let stmt = parse_statement(
            "SELECT * FROM Order_line as ol, Order_line as ol2 \
             WHERE ol.ol_o_id = ol2.ol_o_id AND ol.ol_i_id <> ol2.ol_i_id",
        )
        .unwrap();
        let select = stmt.as_select().unwrap();
        assert_eq!(select.from[0].table, "Order_line");
        assert_eq!(select.from[1].alias, "ol2");
        assert_eq!(select.join_conditions().len(), 1);
        let not_eq = &select.conditions[1];
        assert_eq!(not_eq.op, Comparison::NotEq);
    }

    #[test]
    fn parses_insert_update_delete() {
        let insert = parse_statement(
            "INSERT INTO Customer (c_id, c_uname, c_discount) VALUES (?, ?, 0.05)",
        )
        .unwrap();
        match insert {
            Statement::Insert(i) => {
                assert_eq!(i.table, "Customer");
                assert_eq!(i.columns.len(), 3);
                assert_eq!(i.values[2], Expr::Literal(Value::Float(0.05)));
            }
            other => panic!("expected insert, got {other:?}"),
        }

        let update =
            parse_statement("UPDATE Item SET i_cost = ?, i_pub_date = ? WHERE i_id = ?").unwrap();
        match update {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert_eq!(u.conditions.len(), 1);
                // Parameters are numbered in textual order.
                assert_eq!(u.assignments[0].1, Expr::Parameter(0));
                assert_eq!(u.conditions[0].right, Expr::Parameter(2));
            }
            other => panic!("expected update, got {other:?}"),
        }

        let delete = parse_statement(
            "DELETE FROM Shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?",
        )
        .unwrap();
        match delete {
            Statement::Delete(d) => assert_eq!(d.conditions.len(), 2),
            other => panic!("expected delete, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("INSERT INTO t (a, b) VALUES (1)").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
        assert!(parse_statement("DROP TABLE t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a = 1 extra garbage =").is_err());
        assert!(parse_statement("SELECT * FROM t LIMIT -3").is_err());
    }

    #[test]
    fn workload_parser_collects_statements() {
        let workload = parse_workload([
            "SELECT * FROM Item",
            "INSERT INTO Orders (o_id) VALUES (?)",
        ])
        .unwrap();
        assert_eq!(workload.len(), 2);
        assert!(workload[0].is_read());
        assert!(workload[1].is_write());
    }

    #[test]
    fn display_of_parsed_statement_reparses_identically() {
        let sql = "SELECT c.c_id, o.o_id FROM Customer AS c, Orders AS o \
                   WHERE c.c_id = o.o_c_id AND c.c_uname = ? ORDER BY o.o_date DESC LIMIT 1";
        let stmt = parse_statement(sql).unwrap();
        let reparsed = parse_statement(&stmt.to_string()).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn null_literal_parses() {
        let stmt = parse_statement("UPDATE t SET a = NULL WHERE k = 1").unwrap();
        match stmt {
            Statement::Update(u) => assert_eq!(u.assignments[0].1, Expr::Literal(Value::Null)),
            other => panic!("expected update, got {other:?}"),
        }
    }
}
