//! SQL front end: lexer, abstract syntax tree and parser.
//!
//! The paper models a database workload as a set of SQL statements (§II-B)
//! and ships TPC-W's servlets' SQL through a SQL skin (Apache Phoenix) onto
//! the NoSQL store.  This crate provides the equivalent front end for the
//! reproduction: it parses the subset of SQL that the TPC-W workload, the
//! Company example and Synergy's rewritten queries need —
//!
//! * `SELECT` with multi-table equi-joins (comma syntax with aliases,
//!   including self-joins), filters, `GROUP BY`, `ORDER BY` and `LIMIT`,
//!   aggregates (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`);
//! * `INSERT INTO ... (cols) VALUES (...)`;
//! * `UPDATE ... SET ... WHERE ...`;
//! * `DELETE FROM ... WHERE ...`;
//! * `?` parameter placeholders, bound at execution time;
//! * a leading `EXPLAIN` directive, detected by [`strip_explain`] and
//!   handled at the session layer (the plan is rendered, not executed).
//!
//! ```
//! use sql::parse_statement;
//!
//! let stmt = parse_statement(
//!     "SELECT * FROM Customer AS c, Orders AS o \
//!      WHERE c.c_id = o.o_c_id AND c.c_uname = ?",
//! ).unwrap();
//! let select = stmt.as_select().unwrap();
//! assert_eq!(select.from.len(), 2);
//! assert_eq!(select.join_conditions().len(), 1);
//! assert_eq!(select.filter_conditions().len(), 1);
//! ```

mod ast;
mod lexer;
mod parser;

pub use ast::{
    AggregateFunction, ColumnRef, Comparison, Condition, DeleteStatement, Expr, InsertStatement,
    OrderKey, SelectItem, SelectStatement, Statement, TableRef, UpdateStatement,
};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse_statement, parse_workload, strip_explain, ParseError};
