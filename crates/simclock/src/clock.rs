//! The virtual clock and its duration/instant types.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A span of simulated time with nanosecond resolution.
///
/// `SimDuration` mirrors the subset of `std::time::Duration` the simulator
/// needs, but is kept separate so simulated and wall-clock time can never be
/// mixed by accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration { nanos }
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration {
            nanos: micros * 1_000,
        }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Total nanoseconds in this duration.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Total whole microseconds in this duration.
    pub const fn as_micros(&self) -> u64 {
        self.nanos / 1_000
    }

    /// Total whole milliseconds in this duration.
    pub const fn as_millis(&self) -> u64 {
        self.nanos / 1_000_000
    }

    /// The duration expressed as fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// The duration expressed as fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }

    /// Checked addition, returning `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.nanos.checked_add(rhs.nanos).map(|nanos| SimDuration { nanos })
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos + rhs.nanos,
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos - rhs.nanos,
        }
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            nanos: self.nanos * rhs,
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            nanos: self.nanos / rhs,
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.nanos >= 1_000 {
            write!(f, "{:.3}us", self.nanos as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

/// A point in simulated time, produced by [`SimClock::now`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimInstant {
    nanos: u64,
}

impl SimInstant {
    /// The simulated-time origin.
    pub const EPOCH: SimInstant = SimInstant { nanos: 0 };

    /// Nanoseconds since the simulated epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Duration elapsed from `earlier` to `self`; zero if `earlier` is later.
    pub fn duration_since(&self, earlier: SimInstant) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(earlier.nanos),
        }
    }
}

impl Sub for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            nanos: self.nanos + rhs.as_nanos(),
        }
    }
}

/// A monotonically increasing, thread-safe virtual clock.
///
/// Every component of the simulated cluster shares one `SimClock` (it is
/// cheap to clone — clones share the same underlying counter).  Costs are
/// charged with [`SimClock::charge`]; response times are measured by taking
/// [`SimClock::now`] before and after an operation on a single logical
/// client, mirroring how the paper measures request response time at the
/// client.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at the simulated epoch.
    pub fn new() -> Self {
        SimClock {
            nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        SimInstant {
            nanos: self.nanos.load(Ordering::SeqCst),
        }
    }

    /// Advances the clock by `cost` and returns the new time.
    pub fn charge(&self, cost: SimDuration) -> SimInstant {
        let nanos = self
            .nanos
            .fetch_add(cost.as_nanos(), Ordering::SeqCst)
            + cost.as_nanos();
        SimInstant { nanos }
    }

    /// Measures the simulated duration of `f` as observed by this clock.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, SimDuration) {
        let start = self.now();
        let value = f();
        let elapsed = self.now() - start;
        (value, elapsed)
    }

    /// Resets the clock to the epoch.  Only used between benchmark runs.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::SeqCst);
    }

    /// Returns `true` if both handles refer to the same underlying counter.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.nanos, &other.nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(3);
        assert_eq!((a + b).as_micros(), 13);
        assert_eq!((a - b).as_micros(), 7);
        assert_eq!((a * 4).as_micros(), 40);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn clock_accumulates_charges() {
        let clock = SimClock::new();
        let start = clock.now();
        clock.charge(SimDuration::from_micros(100));
        clock.charge(SimDuration::from_micros(50));
        assert_eq!((clock.now() - start).as_micros(), 150);
    }

    #[test]
    fn clones_share_time() {
        let clock = SimClock::new();
        let clone = clock.clone();
        clone.charge(SimDuration::from_millis(1));
        assert_eq!(clock.now().as_nanos(), 1_000_000);
        assert!(clock.same_clock(&clone));
    }

    #[test]
    fn measure_reports_only_charged_time() {
        let clock = SimClock::new();
        let (value, elapsed) = clock.measure(|| {
            clock.charge(SimDuration::from_millis(3));
            42
        });
        assert_eq!(value, 42);
        assert_eq!(elapsed.as_millis(), 3);
    }

    #[test]
    fn instant_ordering_and_display() {
        let clock = SimClock::new();
        let a = clock.now();
        clock.charge(SimDuration::from_nanos(10));
        let b = clock.now();
        assert!(b > a);
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
    }

    #[test]
    fn charges_are_thread_safe() {
        let clock = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = clock.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.charge(SimDuration::from_nanos(1));
                    }
                });
            }
        });
        assert_eq!(clock.now().as_nanos(), 8_000);
    }
}
