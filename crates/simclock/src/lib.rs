//! Deterministic virtual time and cluster cost model.
//!
//! The original Synergy evaluation (Tapdiya et al., CLUSTER 2017) ran on an
//! eight node Amazon EC2 cluster with HBase/HDFS/ZooKeeper as the storage
//! substrate.  This reproduction replaces the physical cluster with a
//! simulated one: every storage, network and transaction primitive charges a
//! deterministic cost into a [`SimClock`], and all reported "response times"
//! are simulated durations.
//!
//! The cost model is intentionally simple and structural: it captures the
//! *causes* of the paper's performance results (per-RPC network latency,
//! sequential scan throughput, MVCC transaction-server round trips, lock
//! acquisition RPCs, single-threaded partition execution) rather than any
//! absolute hardware numbers.  The shape of each figure — which system wins,
//! by roughly what factor, and where crossovers fall — is therefore a
//! consequence of the same mechanisms the paper identifies.
//!
//! # Example
//!
//! ```
//! use simclock::{CostModel, SimClock};
//!
//! let clock = SimClock::new();
//! let model = CostModel::default();
//! let start = clock.now();
//! clock.charge(model.rpc_round_trip());           // one Get
//! clock.charge(model.scan_cost(1_000, 128));      // scan 1000 rows of 128 B
//! let elapsed = clock.now() - start;
//! assert!(elapsed.as_micros() > 0);
//! ```

mod clock;
mod cost;
mod parallel;
mod stats;

pub use clock::{SimClock, SimDuration, SimInstant};
pub use cost::{CostModel, StorageMedium};
pub use parallel::{merge_elapsed, WorkerClock};
pub use stats::{mean, std_error, Summary};
