//! The cluster cost model.
//!
//! Each field is the simulated cost of one primitive in the storage,
//! transaction or execution layer.  The defaults are calibrated so that the
//! *structural* results of the paper hold:
//!
//! * joins in the NoSQL store are slow because every participating table is
//!   scanned, shipped and re-shuffled between executor stages
//!   (`join_shuffle_row`, `join_probe`), while a materialized-view scan
//!   streams a single pre-computed table (`scan_next_row`, `scan_byte`);
//! * MVCC transactions (Phoenix + Tephra in the paper) pay two transaction
//!   server round trips plus conflict detection, a fixed ~0.85 s per
//!   statement overhead (`mvcc_begin`, `mvcc_commit`), matching the 800–900
//!   ms the paper reports in §IX-D4;
//! * acquiring a row lock is a `checkAndPut` RPC, so many-lock transactions
//!   are dominated by lock traffic (Fig. 11);
//! * the NewSQL engine executes partition-local work in memory on a single
//!   thread with no per-row RPC, making it the fastest but least expressive
//!   system (Fig. 12 / Fig. 14).

use crate::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// The storage medium backing write-ahead-log syncs.
///
/// The paper's cluster used EBS SSD volumes; `Memory` is useful for tests
/// that want to isolate algorithmic costs from durability costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StorageMedium {
    /// Durability writes charge the full SSD sync cost.
    #[default]
    Ssd,
    /// Durability writes are free (pure in-memory experiments).
    Memory,
}

/// Simulated cost of every primitive used by the reproduction.
///
/// All costs are deterministic.  See the module documentation for the
/// calibration rationale; see `EXPERIMENTS.md` for the measured outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Client ⇄ region-server round-trip latency charged once per RPC
    /// (Get/Put/Delete/Increment/CheckAndPut and per scan batch).
    pub rpc_latency: SimDuration,
    /// Cost of opening a scanner on one region.
    pub scan_open: SimDuration,
    /// Per-row cost of streaming rows out of a scanner.
    pub scan_next_row: SimDuration,
    /// Per-byte cost of streaming scan results to the client.
    pub scan_byte_ns: u64,
    /// Number of rows returned per scan RPC batch.
    pub scan_batch_rows: u64,
    /// Server-side work for a point Get.
    pub get_server_work: SimDuration,
    /// Server-side work for a Put (memstore insert).
    pub put_server_work: SimDuration,
    /// Durability (WAL sync) cost charged per write RPC.
    pub wal_sync: SimDuration,
    /// Server-side work for an atomic CheckAndPut (used by lock tables).
    pub check_and_put_work: SimDuration,
    /// Server-side work for a Delete.
    pub delete_server_work: SimDuration,
    /// Per-row cost of moving an intermediate row between join stages
    /// (the "data transfer latency" the paper blames for slow joins).
    pub join_shuffle_row: SimDuration,
    /// Per-probe cost into the build side of a hash join.
    pub join_probe: SimDuration,
    /// Per-cell cost of MVCC version visibility filtering.
    pub version_check: SimDuration,
    /// Transaction-server round trip to begin an MVCC transaction.
    pub mvcc_begin: SimDuration,
    /// Transaction-server round trip to commit an MVCC transaction
    /// (conflict detection + commit record persistence).
    pub mvcc_commit: SimDuration,
    /// NewSQL (VoltDB-class) per-statement dispatch to the owning partition.
    pub newsql_dispatch: SimDuration,
    /// NewSQL per-row operator cost (in-memory, single threaded).
    pub newsql_row_op: SimDuration,
    /// NewSQL cost of broadcasting a write to a replicated table.
    pub newsql_broadcast: SimDuration,
    /// NewSQL per-write durability cost (synchronous intra-cluster
    /// replication / command logging).
    pub newsql_write_durability: SimDuration,
    /// Client-side per-result-row processing cost.
    pub client_row_process: SimDuration,
    /// Fixed cost of bringing a crashed cluster back (region reassignment,
    /// lease and metadata recovery) before WAL replay starts.
    pub recovery_base: SimDuration,
    /// Per-entry cost of replaying a synced WAL record during recovery.
    pub wal_replay_entry: SimDuration,
    /// Cost of shipping one synced WAL record to one follower replica
    /// (region replication, `ClusterConfig::replication_factor > 1`).
    /// Shipping rides the group-commit flush, so a batch of `n` records to
    /// `f` followers charges `n * f` of this on the batch-closing write.
    /// Never charged when replication is off.
    pub replica_ship: SimDuration,
    /// Storage medium for WAL syncs.
    pub medium: StorageMedium,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rpc_latency: SimDuration::from_micros(900),
            scan_open: SimDuration::from_micros(1_200),
            scan_next_row: SimDuration::from_nanos(1_500),
            scan_byte_ns: 2,
            scan_batch_rows: 1_000,
            get_server_work: SimDuration::from_micros(120),
            put_server_work: SimDuration::from_micros(150),
            wal_sync: SimDuration::from_micros(6_000),
            check_and_put_work: SimDuration::from_micros(350),
            delete_server_work: SimDuration::from_micros(140),
            join_shuffle_row: SimDuration::from_nanos(12_000),
            join_probe: SimDuration::from_nanos(3_500),
            version_check: SimDuration::from_nanos(900),
            mvcc_begin: SimDuration::from_millis(260),
            mvcc_commit: SimDuration::from_millis(590),
            newsql_dispatch: SimDuration::from_micros(450),
            newsql_row_op: SimDuration::from_nanos(650),
            newsql_broadcast: SimDuration::from_micros(1_800),
            newsql_write_durability: SimDuration::from_micros(9_000),
            client_row_process: SimDuration::from_nanos(250),
            recovery_base: SimDuration::from_millis(50),
            wal_replay_entry: SimDuration::from_micros(20),
            replica_ship: SimDuration::from_micros(400),
            medium: StorageMedium::Ssd,
        }
    }
}

impl CostModel {
    /// A cost model with free durability, for algorithm-only experiments.
    pub fn in_memory() -> Self {
        CostModel {
            medium: StorageMedium::Memory,
            ..CostModel::default()
        }
    }

    /// Effective WAL sync cost for the configured medium.
    pub fn effective_wal_sync(&self) -> SimDuration {
        match self.medium {
            StorageMedium::Ssd => self.wal_sync,
            StorageMedium::Memory => SimDuration::ZERO,
        }
    }

    /// Cost of a single client ⇄ server RPC round trip.
    pub fn rpc_round_trip(&self) -> SimDuration {
        self.rpc_latency
    }

    /// Total cost of a point Get.
    pub fn get_cost(&self) -> SimDuration {
        self.rpc_latency + self.get_server_work
    }

    /// Total cost of a Put carrying `cells` cell values.
    pub fn put_cost(&self, cells: usize) -> SimDuration {
        self.rpc_latency
            + self.put_server_work
            + SimDuration::from_nanos(200 * cells as u64)
            + self.effective_wal_sync()
    }

    /// Total cost of a Delete.
    pub fn delete_cost(&self) -> SimDuration {
        self.rpc_latency + self.delete_server_work + self.effective_wal_sync()
    }

    /// Total cost of an atomic CheckAndPut (lock acquire / release).
    pub fn check_and_put_cost(&self) -> SimDuration {
        self.rpc_latency + self.check_and_put_work + self.effective_wal_sync()
    }

    /// Total cost of scanning `rows` rows totalling `bytes` bytes.
    ///
    /// A scan pays one scanner-open, one RPC per `scan_batch_rows` batch and
    /// per-row / per-byte streaming costs.
    pub fn scan_cost(&self, rows: u64, bytes: u64) -> SimDuration {
        let batches = rows.div_ceil(self.scan_batch_rows).max(1);
        self.scan_open
            + self.rpc_latency * batches
            + self.scan_next_row * rows
            + SimDuration::from_nanos(self.scan_byte_ns * bytes)
    }

    /// Cost of shuffling `rows` intermediate rows between join stages.
    pub fn shuffle_cost(&self, rows: u64) -> SimDuration {
        self.join_shuffle_row * rows
    }

    /// Cost of `probes` probes into a hash-join build table.
    pub fn probe_cost(&self, probes: u64) -> SimDuration {
        self.join_probe * probes
    }

    /// Fixed MVCC transaction overhead (begin + commit), independent of the
    /// statement body.  The paper measures this at 800–900 ms.
    pub fn mvcc_overhead(&self) -> SimDuration {
        self.mvcc_begin + self.mvcc_commit
    }

    /// Cost of MVCC visibility filtering over `cells` cell versions.
    pub fn mvcc_filter_cost(&self, cells: u64) -> SimDuration {
        self.version_check * cells
    }

    /// Cost of a partition-local NewSQL statement touching `rows` rows.
    pub fn newsql_statement_cost(&self, rows: u64, replicated_write: bool) -> SimDuration {
        let broadcast = if replicated_write {
            self.newsql_broadcast
        } else {
            SimDuration::ZERO
        };
        self.newsql_dispatch + self.newsql_row_op * rows + broadcast
    }

    /// Cost of one NewSQL write statement touching `rows` rows: the
    /// partition-local work plus synchronous replication / command logging.
    pub fn newsql_write_cost(&self, rows: u64, replicated_write: bool) -> SimDuration {
        self.newsql_statement_cost(rows, replicated_write) + self.newsql_write_durability
    }

    /// Client-side cost of materializing `rows` result rows.
    pub fn client_result_cost(&self, rows: u64) -> SimDuration {
        self.client_row_process * rows
    }

    /// Cost of recovering a crashed cluster by replaying `entries` synced
    /// WAL records over the last durable checkpoint.
    pub fn recovery_cost(&self, entries: u64) -> SimDuration {
        self.recovery_base + self.wal_replay_entry * entries
    }

    /// Cost of shipping synced WAL records to follower replicas:
    /// `ship_events` is records × reachable followers (each record/follower
    /// pair is one intra-cluster transfer + follower memstore apply).
    pub fn replication_ship_cost(&self, ship_events: u64) -> SimDuration {
        self.replica_ship * ship_events
    }

    /// Cost of a rejoining replica catching up by replaying `records`
    /// shipped-log records it missed while it was down.
    pub fn catchup_replay_cost(&self, records: u64) -> SimDuration {
        self.wal_replay_entry * records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_structural_ordering() {
        let m = CostModel::default();
        // One MVCC round trip dwarfs a locked write's lock traffic: this is
        // the core reason Synergy writes beat the MVCC systems (Fig. 14).
        assert!(m.mvcc_overhead() > m.check_and_put_cost() * 20);
        // Scanning a row out of a view is cheaper than shuffling and probing
        // the same row through a join: the reason views win (Fig. 10).
        assert!(m.scan_next_row < m.join_shuffle_row + m.join_probe);
        // NewSQL partition-local execution beats any RPC-per-op system.
        assert!(m.newsql_statement_cost(10, false) < m.get_cost());
    }

    #[test]
    fn scan_cost_scales_with_rows_and_bytes() {
        let m = CostModel::default();
        let small = m.scan_cost(100, 100 * 64);
        let large = m.scan_cost(100_000, 100_000 * 64);
        assert!(large > small * 50);
    }

    #[test]
    fn memory_medium_removes_wal_cost() {
        let ssd = CostModel::default();
        let mem = CostModel::in_memory();
        assert!(ssd.put_cost(4) > mem.put_cost(4));
        assert_eq!(mem.effective_wal_sync(), SimDuration::ZERO);
    }

    #[test]
    fn replication_costs_scale_with_ship_events() {
        let m = CostModel::default();
        assert_eq!(m.replication_ship_cost(0), SimDuration::ZERO);
        assert_eq!(m.replication_ship_cost(10), m.replica_ship * 10);
        // Shipping one record is cheaper than a client RPC: followers sit on
        // the cluster fabric, not behind the client round trip.
        assert!(m.replica_ship < m.rpc_latency);
        assert_eq!(m.catchup_replay_cost(5), m.wal_replay_entry * 5);
    }

    #[test]
    fn scan_cost_charges_per_batch_rpc() {
        let m = CostModel::default();
        let one_batch = m.scan_cost(10, 0);
        let three_batches = m.scan_cost(2_500, 0);
        // 2500 rows => 3 batches => at least 2 extra RPC latencies.
        assert!(three_batches > one_batch + m.rpc_latency * 2);
    }
}
