//! Small statistics helpers used by the benchmark harness.
//!
//! The paper reports the mean and standard error of 10 repetitions for every
//! experiment; [`Summary`] captures exactly that.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice; zero for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Standard error of the mean (sample standard deviation / sqrt(n)).
pub fn std_error(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
    (var / samples.len() as f64).sqrt()
}

/// Mean, standard error and range of a set of repeated measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples aggregated.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`; an empty input produces an all-zero summary.
    pub fn of(samples: &[f64]) -> Summary {
        Summary {
            n: samples.len(),
            mean: mean(samples),
            std_error: std_error(samples),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(f64::NEG_INFINITY),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.std_error, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_error_of_constant_samples_is_zero() {
        assert_eq!(std_error(&[5.0; 10]), 0.0);
        assert_eq!(std_error(&[1.0]), 0.0);
    }

    #[test]
    fn summary_captures_range() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[2.0, 2.0]);
        assert_eq!(format!("{s}"), "2.00 ± 0.00 (n=2)");
    }

    proptest! {
        #[test]
        fn mean_is_bounded_by_min_and_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
            let m = mean(&samples);
            let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
        }

        #[test]
        fn std_error_is_non_negative(samples in proptest::collection::vec(-1e6f64..1e6, 0..64)) {
            prop_assert!(std_error(&samples) >= 0.0);
        }
    }
}
