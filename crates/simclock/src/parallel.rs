//! Merge rules for parallel workers charging private clocks.
//!
//! Region-parallel execution runs each worker against a **fresh, private**
//! [`SimClock`] so that concurrent charges never interleave on the shared
//! timeline.  When the workers rendezvous at a barrier, their deltas are
//! merged under two rules, applied by every parallel layer in the workspace:
//!
//! * **elapsed time is the max** of the per-worker deltas — workers run
//!   concurrently, so the simulated wall time of the fan-out is the slowest
//!   worker's time ([`merge_elapsed`]);
//! * **cost counters are the sum** — every RPC, scanned row and shipped byte
//!   still happened, on some node; resource accounting (the
//!   `nosql_store::OpCounters` fields) is therefore additive across workers.
//!
//! Because each worker's delta is a pure function of its assigned partition
//! (never of OS scheduling), merged figures are deterministic at every
//! thread count, and a single worker (`threads = 1`) degenerates to the
//! serial charge sequence exactly.

use crate::clock::{SimClock, SimDuration, SimInstant};

/// A private per-worker clock plus the helpers to read its delta.
///
/// Workers charge into [`WorkerClock::clock`]; after the barrier the caller
/// merges the deltas with [`merge_elapsed`] and charges the result into the
/// shared timeline once.
#[derive(Debug, Clone, Default)]
pub struct WorkerClock {
    clock: SimClock,
}

impl WorkerClock {
    /// A fresh worker clock starting at the simulated epoch.
    pub fn new() -> Self {
        WorkerClock { clock: SimClock::new() }
    }

    /// The clock to hand to the worker.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Everything the worker has charged so far.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now() - SimInstant::EPOCH
    }
}

/// The elapsed simulated time of a parallel fan-out: the **max** of the
/// per-worker deltas (workers run concurrently).  Zero for no workers.
pub fn merge_elapsed(deltas: impl IntoIterator<Item = SimDuration>) -> SimDuration {
    deltas.into_iter().max().unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_merges_as_max() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(7);
        let c = SimDuration::from_millis(5);
        assert_eq!(merge_elapsed([a, b, c]), b);
        assert_eq!(merge_elapsed([]), SimDuration::ZERO);
    }

    #[test]
    fn worker_clock_reports_its_own_delta_only() {
        let shared = SimClock::new();
        let worker = WorkerClock::new();
        shared.charge(SimDuration::from_millis(10));
        worker.clock().charge(SimDuration::from_millis(2));
        assert_eq!(worker.elapsed(), SimDuration::from_millis(2));
        // Merging back: the shared timeline advances by the worker max once.
        shared.charge(merge_elapsed([worker.elapsed()]));
        assert_eq!(shared.now().as_nanos(), 12_000_000);
    }
}
