//! A small chunked scoped-thread pool for region-parallel execution.
//!
//! This workspace builds offline (no crates registry), so instead of rayon
//! the parallel layers — `nosql_store`'s region-parallel scans, the query
//! executor's partitioned hash join and parallel top-k, Synergy's batch view
//! refreshes — share this ~100-line fan-out primitive built on
//! [`std::thread::scope`].
//!
//! The model is deliberately simple and deterministic:
//!
//! * work is split into **contiguous chunks**, one per worker, preserving
//!   input order in the output — callers that merge range-partitioned
//!   results rely on this;
//! * workers are **scoped threads**, so closures may borrow from the
//!   caller's stack (no `'static` bounds, no channels);
//! * every call is a **barrier**: all chunks complete before `map` returns,
//!   which is what makes the sim-clock merge rules (max of per-worker
//!   elapsed, sum of cost counters) well defined;
//! * `threads <= 1` (or a single-item input) runs inline on the caller's
//!   thread — zero overhead and byte-identical behavior to serial code.
//!
//! A worker panic propagates to the caller (the join re-raises it), so
//! errors inside chunks should be returned as values, not panics.

use std::num::NonZeroUsize;

/// Number of hardware threads, used by callers that want a default degree of
/// parallelism.  Falls back to 1 when the platform cannot report it.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `len` items into at most `parts` contiguous index ranges of
/// near-equal size (the first `len % parts` ranges are one longer).  Empty
/// ranges are never produced; fewer than `parts` ranges are returned when
/// `len < parts`.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// preserving input order in the returned vector.
///
/// The items are split into contiguous chunks ([`chunk_ranges`]); the first
/// chunk runs on the calling thread (so `threads = n` spawns at most `n - 1`
/// OS threads), the rest on scoped workers.  With `threads <= 1` this is
/// exactly `items.into_iter().map(f).collect()`.
pub fn map<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    map_chunked(items, threads, |chunk| chunk.into_iter().map(&f).collect::<Vec<T>>())
        .into_iter()
        .flatten()
        .collect()
}

/// Like [`map`], but hands each worker its whole contiguous chunk at once
/// (callers that build per-partition state — a hash table, a bounded heap —
/// want one invocation per chunk, not per item).  Returns one result per
/// chunk, in chunk order.
pub fn map_chunked<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(Vec<I>) -> T + Sync,
{
    let ranges = chunk_ranges(items.len(), threads);
    if ranges.len() <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(items)];
    }

    // Carve the items into owned chunks, front to back.
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    for range in ranges.iter().rev() {
        chunks.push(rest.split_off(range.start));
    }
    chunks.push(rest);
    chunks.reverse();
    chunks.retain(|c| !c.is_empty());

    let f = &f;
    std::thread::scope(|scope| {
        let mut iter = chunks.into_iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let handles: Vec<_> = iter.map(|chunk| scope.spawn(move || f(chunk))).collect();
        // The caller's thread works the first chunk while the others run.
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(f(first));
        for handle in handles {
            // Re-raise a worker's panic with its original payload rather
            // than a second, less informative panic at the join site.
            out.push(handle.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let mut covered = 0;
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty ranges");
                    covered += r.len();
                    next = r.end;
                }
                assert_eq!(covered, len, "len={len} parts={parts}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn map_preserves_order_at_every_width() {
        let input: Vec<i64> = (0..103).collect();
        let expected: Vec<i64> = input.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            assert_eq!(map(input.clone(), threads, |x| x * 2), expected);
        }
    }

    #[test]
    fn map_borrows_from_the_caller() {
        let base = 10i64;
        let out = map(vec![1i64, 2, 3], 2, |x| x + base);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn map_chunked_sees_contiguous_chunks_in_order() {
        let out = map_chunked((0..10).collect::<Vec<i32>>(), 3, |chunk| chunk);
        let flat: Vec<i32> = out.iter().flatten().copied().collect();
        assert_eq!(flat, (0..10).collect::<Vec<i32>>());
        assert_eq!(out.len(), 3);
        for chunk in &out {
            let mut sorted = chunk.clone();
            sorted.sort();
            assert_eq!(&sorted, chunk, "chunks are contiguous runs");
        }
    }

    #[test]
    fn work_actually_fans_out() {
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        map((0..8).collect::<Vec<u32>>(), 4, |_| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        // All four workers (including the caller's chunk) overlap in time.
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "peak={}", PEAK.load(Ordering::SeqCst));
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(map(Vec::<u8>::new(), 4, |x| x).is_empty());
        assert_eq!(map(vec![7u8], 4, |x| x), vec![7]);
        assert!(map_chunked(Vec::<u8>::new(), 4, |c| c).is_empty());
    }
}
