//! Write-statement execution (INSERT / UPDATE / DELETE) and index
//! maintenance, plus the bulk-load path used to populate databases.
//!
//! As in Phoenix, secondary indexes are maintained synchronously with the
//! base-table write: every index table of the written relation receives the
//! corresponding put/delete, and each of those is a separately charged store
//! operation.

use crate::bind::bind_expr;
use crate::catalog::{TableDef, TableKind};
use crate::executor::Executor;
use crate::result::{QueryError, QueryResult};
use nosql_store::ops::{Delete, Get, Put};
use relational::{Row, Value};
use sql::{Comparison, DeleteStatement, Expr, InsertStatement, UpdateStatement};
use std::collections::BTreeMap;

impl Executor {
    // ------------------------------------------------------------------
    // Public load helpers
    // ------------------------------------------------------------------

    /// Inserts one relational row into a table (and all of its index tables),
    /// charging normal per-operation costs.  This is the path the write
    /// statements of every evaluated system ultimately use.
    pub fn insert_row(&self, table: &str, row: &Row) -> Result<(), QueryError> {
        let def = self
            .catalog()
            .table_ci(table)
            .ok_or_else(|| QueryError::UnknownTable(table.to_string()))?
            .clone();
        self.check_key_present(&def, row)?;
        self.cluster().put(&def.name, def.row_to_put(row))?;
        for index in self.catalog().indexes_of(&def.name) {
            self.cluster().put(&index.name, index.row_to_put(row))?;
        }
        Ok(())
    }

    /// Bulk-loads rows into a table and its indexes without charging
    /// simulated time (the offline population phase of the paper's
    /// experiments).
    pub fn bulk_load_rows<'a>(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> Result<usize, QueryError> {
        let def = self
            .catalog()
            .table_ci(table)
            .ok_or_else(|| QueryError::UnknownTable(table.to_string()))?
            .clone();
        let indexes: Vec<TableDef> = self
            .catalog()
            .indexes_of(&def.name)
            .into_iter()
            .cloned()
            .collect();
        let mut count = 0;
        let mut base_puts = Vec::new();
        let mut index_puts: Vec<Vec<Put>> = vec![Vec::new(); indexes.len()];
        for row in rows {
            base_puts.push(def.row_to_put(row));
            for (i, index) in indexes.iter().enumerate() {
                index_puts[i].push(index.row_to_put(row));
            }
            count += 1;
        }
        self.cluster().bulk_load(&def.name, base_puts)?;
        for (i, index) in indexes.iter().enumerate() {
            self.cluster().bulk_load(&index.name, std::mem::take(&mut index_puts[i]))?;
        }
        Ok(count)
    }

    /// Reads one row of a table by its full primary key values.
    pub fn get_row_by_key(&self, table: &str, key: &Row) -> Result<Option<Row>, QueryError> {
        let def = self
            .catalog()
            .table_ci(table)
            .ok_or_else(|| QueryError::UnknownTable(table.to_string()))?;
        let row_key = def.encode_row_key(key);
        Ok(self
            .cluster()
            .get(&def.name, Get::new(row_key))?
            .map(|stored| def.decode_row(&stored)))
    }

    /// Deletes one row of a table (and its index entries) by primary key.
    pub fn delete_row_by_key(&self, table: &str, key: &Row) -> Result<bool, QueryError> {
        Ok(self.delete_row_fetch(table, key)?.is_some())
    }

    /// Deletes one row by primary key and returns its **before-image**.
    ///
    /// The prior row contents ride the delete's own store round trip
    /// ([`nosql_store::Cluster::delete_fetch`]) — no separately charged
    /// read — and also drive index-entry cleanup, so a keyed delete now
    /// costs one store delete per table touched instead of a get plus a
    /// delete.  The before-image is what update/delete delta propagation
    /// needs to retract the old row from dependent views.
    pub fn delete_row_fetch(&self, table: &str, key: &Row) -> Result<Option<Row>, QueryError> {
        let def = self
            .catalog()
            .table_ci(table)
            .ok_or_else(|| QueryError::UnknownTable(table.to_string()))?
            .clone();
        let row_key = def.encode_row_key(key);
        let before = self
            .cluster()
            .delete_fetch(&def.name, Delete::row(row_key))?
            .map(|stored| def.decode_row(&stored));
        if let Some(existing) = &before {
            for index in self.catalog().indexes_of(&def.name) {
                let index_key = index.encode_row_key(existing);
                self.cluster().delete(&index.name, Delete::row(index_key))?;
            }
        }
        Ok(before)
    }

    /// Writes one full row (an update's merged image) and returns the
    /// row's **before-image**, read atomically with the write
    /// ([`nosql_store::Cluster::put_fetch`]).  Index entries whose keys
    /// changed are rewritten against that authoritative prior image, so
    /// callers that already merged assignments do not pay a second read.
    pub fn update_row(&self, table: &str, updated: &Row) -> Result<Option<Row>, QueryError> {
        let def = self
            .catalog()
            .table_ci(table)
            .ok_or_else(|| QueryError::UnknownTable(table.to_string()))?
            .clone();
        self.check_key_present(&def, updated)?;
        let before = self
            .cluster()
            .put_fetch(&def.name, def.row_to_put(updated))?
            .map(|stored| def.decode_row(&stored));
        for index in self.catalog().indexes_of(&def.name) {
            if let Some(existing) = &before {
                let old_key = index.encode_row_key(existing);
                let new_key = index.encode_row_key(updated);
                if old_key != new_key {
                    self.cluster().delete(&index.name, Delete::row(old_key))?;
                }
            }
            self.cluster().put(&index.name, index.row_to_put(updated))?;
        }
        Ok(before)
    }

    fn check_key_present(&self, def: &TableDef, row: &Row) -> Result<(), QueryError> {
        for k in &def.key {
            if row.get(k).map(Value::is_null).unwrap_or(true) {
                return Err(QueryError::IncompleteKey {
                    table: def.name.clone(),
                    missing: k.clone(),
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    pub(crate) fn execute_insert(
        &self,
        insert: &InsertStatement,
        params: &[Value],
    ) -> Result<QueryResult, QueryError> {
        let def = self
            .catalog()
            .table_ci(&insert.table)
            .ok_or_else(|| QueryError::UnknownTable(insert.table.clone()))?
            .clone();
        let mut row = Row::new();
        for (column, expr) in insert.columns.iter().zip(&insert.values) {
            if def.column_type(column).is_none() {
                return Err(QueryError::UnknownColumn(format!(
                    "{}.{}",
                    def.name, column
                )));
            }
            row.set(column.clone(), bind_expr(expr, params)?);
        }
        self.insert_row(&def.name, &row)?;
        Ok(QueryResult::affected(1))
    }

    /// Extracts the primary-key values from the equality filters of a write
    /// statement's WHERE clause; errors if any key attribute is missing
    /// (paper §IV: unsupported write shapes are excluded from the workload).
    pub(crate) fn key_from_conditions(
        &self,
        def: &TableDef,
        conditions: &[sql::Condition],
        params: &[Value],
    ) -> Result<Row, QueryError> {
        let mut filters: BTreeMap<String, Value> = BTreeMap::new();
        for c in conditions {
            if c.op == Comparison::Eq {
                if let Expr::Column(_) = c.right {
                    continue;
                }
                filters.insert(c.left.column.clone(), bind_expr(&c.right, params)?);
            }
        }
        let mut key = Row::new();
        for k in &def.key {
            match filters.get(k) {
                Some(v) => {
                    key.set(k.clone(), v.clone());
                }
                None => {
                    return Err(QueryError::IncompleteKey {
                        table: def.name.clone(),
                        missing: k.clone(),
                    })
                }
            }
        }
        Ok(key)
    }

    pub(crate) fn execute_update(
        &self,
        update: &UpdateStatement,
        params: &[Value],
    ) -> Result<QueryResult, QueryError> {
        let def = self
            .catalog()
            .table_ci(&update.table)
            .ok_or_else(|| QueryError::UnknownTable(update.table.clone()))?
            .clone();
        let key = self.key_from_conditions(&def, &update.conditions, params)?;
        let Some(existing) = self.get_row_by_key(&def.name, &key)? else {
            return Ok(QueryResult::affected(0));
        };
        let mut updated = existing.clone();
        for (column, expr) in &update.assignments {
            if def.column_type(column).is_none() {
                return Err(QueryError::UnknownColumn(format!(
                    "{}.{}",
                    def.name, column
                )));
            }
            updated.set(column.clone(), bind_expr(expr, params)?);
        }
        self.update_row(&def.name, &updated)?;
        Ok(QueryResult::affected(1))
    }

    pub(crate) fn execute_delete(
        &self,
        delete: &DeleteStatement,
        params: &[Value],
    ) -> Result<QueryResult, QueryError> {
        let def = self
            .catalog()
            .table_ci(&delete.table)
            .ok_or_else(|| QueryError::UnknownTable(delete.table.clone()))?
            .clone();
        let key = self.key_from_conditions(&def, &delete.conditions, params)?;
        let removed = self.delete_row_by_key(&def.name, &key)?;
        Ok(QueryResult::affected(usize::from(removed)))
    }
}

// Re-exported for the baseline module's table creation helper.
pub(crate) fn is_physical_kind(kind: &TableKind) -> bool {
    matches!(
        kind,
        TableKind::Base | TableKind::Index { .. } | TableKind::View | TableKind::Lock
    )
}
