//! Streaming operator helpers for the pull-based executor pipeline.
//!
//! The executor evaluates a SELECT as a tree of lazy row iterators
//! ([`RowStream`]): store scans decode rows on demand, filters and joins
//! wrap the upstream iterator, and only the operators that fundamentally
//! need materialization — hash-join build sides, GROUP BY state, ORDER BY
//! buffers — hold rows.  [`Residency`] meters exactly those buffers so the
//! memory footprint of a statement is measured, not asserted, and
//! [`top_k`] keeps the ORDER BY + LIMIT buffer bounded at `k` rows.

use crate::result::QueryError;
use relational::Row;
use std::cell::Cell;
use std::cmp::Ordering;

/// A pull-based stream of decoded rows.  Errors (store failures, dirty-row
/// restarts) flow through the stream and abort the pipeline at the consumer.
pub(crate) type RowStream<'a> = Box<dyn Iterator<Item = Result<Row, QueryError>> + 'a>;

/// Counts the rows the executor holds materialized at once: hash-join build
/// sides, aggregation input, sort / top-k buffers and the emitted result.
/// `peak` is the statement's high-water mark, reported on the query result.
#[derive(Debug, Default)]
pub(crate) struct Residency {
    current: Cell<usize>,
    peak: Cell<usize>,
}

impl Residency {
    /// Records `n` newly materialized rows.
    pub(crate) fn add(&self, n: usize) {
        let current = self.current.get() + n;
        self.current.set(current);
        if current > self.peak.get() {
            self.peak.set(current);
        }
    }

    /// The statement's high-water mark of resident rows.
    pub(crate) fn peak(&self) -> usize {
        self.peak.get()
    }

    /// Records `n` rows leaving the materialized working set (e.g. a
    /// processed batch whose rows were dropped by a bounded heap).  The
    /// peak is unaffected.
    pub(crate) fn remove(&self, n: usize) {
        self.current.set(self.current.get().saturating_sub(n));
    }
}

/// Drains a stream into a vector, metering every collected row.
pub(crate) fn collect_stream(
    stream: RowStream<'_>,
    meter: &Residency,
) -> Result<Vec<Row>, QueryError> {
    let mut out = Vec::new();
    for row in stream {
        out.push(row?);
        meter.add(1);
    }
    Ok(out)
}

/// Bounded ORDER BY + LIMIT: selects the `k` smallest rows under `cmp`
/// (ties resolved arbitrarily, like any top-k heap) and returns them sorted.
///
/// The buffer is a binary max-heap of at most `k` rows with the *worst*
/// retained row at the root, so a `LIMIT k` query holds `k` rows resident
/// instead of the full input — the replacement for sort-then-truncate.
pub(crate) fn top_k(
    stream: RowStream<'_>,
    k: usize,
    cmp: impl Fn(&Row, &Row) -> Ordering,
    meter: &Residency,
) -> Result<Vec<Row>, QueryError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut heap: Vec<Row> = Vec::with_capacity(k);
    for row in stream {
        let row = row?;
        if heap.len() < k {
            meter.add(1);
        }
        // Below capacity the row is retained; at capacity it evicts the
        // worst retained row (residency stays at k) or is dropped.
        push_bounded(&mut heap, row, k, &cmp);
    }
    heap.sort_by(|a, b| cmp(a, b));
    Ok(heap)
}

/// Parallel ORDER BY + LIMIT: per-worker bounded heaps merged at the
/// barrier.  The input streams through in order-preserving **batches** —
/// each batch is split into contiguous chunks, chunk *i* feeding worker
/// *i*'s persistent bounded heap — so residency stays at one batch plus
/// `threads · k` heap rows instead of the whole input.  Rows a worker
/// drops were beaten by `k` retained rows, hence are globally droppable;
/// the final merge re-selects over the ≤ `threads · k` survivors (ties
/// resolved arbitrarily, like any top-k heap).
pub(crate) fn par_top_k(
    mut stream: RowStream<'_>,
    k: usize,
    cmp: impl Fn(&Row, &Row) -> Ordering + Sync,
    meter: &Residency,
    threads: usize,
) -> Result<Vec<Row>, QueryError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let cmp = &cmp;
    let batch_rows = (threads * 1_024).max(k);
    let mut heaps: Vec<Vec<Row>> = Vec::new();
    loop {
        let mut batch: Vec<Row> = Vec::new();
        for row in stream.by_ref().take(batch_rows) {
            batch.push(row?);
        }
        if batch.is_empty() {
            break;
        }
        let collected = batch.len();
        meter.add(collected);
        let retained_before: usize = heaps.iter().map(Vec::len).sum();
        // Pair each chunk with a persistent heap (chunk count can shrink on
        // the final short batch; unpaired heaps just carry over).
        let ranges = pool::chunk_ranges(batch.len(), threads);
        while heaps.len() < ranges.len() {
            heaps.push(Vec::with_capacity(k));
        }
        let carried: Vec<Vec<Row>> = heaps.split_off(ranges.len());
        let mut chunks: Vec<Vec<Row>> = Vec::with_capacity(ranges.len());
        for range in ranges.iter().rev() {
            chunks.push(batch.split_off(range.start));
        }
        chunks.reverse();
        heaps = pool::map(
            std::mem::take(&mut heaps).into_iter().zip(chunks).collect(),
            threads,
            |(mut heap, chunk)| {
                for row in chunk {
                    push_bounded(&mut heap, row, k, cmp);
                }
                heap
            },
        );
        heaps.extend(carried);
        let retained_after: usize = heaps.iter().map(Vec::len).sum();
        // Rows the heaps dropped leave the working set; retained growth stays.
        meter.remove(collected - (retained_after - retained_before));
    }
    let mut heap: Vec<Row> = Vec::with_capacity(k);
    for row in heaps.into_iter().flatten() {
        // Survivors were already metered as retained rows; the merge
        // re-selects among them without materializing anything new.
        push_bounded(&mut heap, row, k, cmp);
    }
    heap.sort_by(|a, b| cmp(a, b));
    Ok(heap)
}

/// Inserts `row` into a bounded max-at-root heap of capacity `k`, evicting
/// the worst retained row when full (the primitive both [`top_k`] and
/// [`par_top_k`] are built from).
fn push_bounded(heap: &mut Vec<Row>, row: Row, k: usize, cmp: &impl Fn(&Row, &Row) -> Ordering) {
    if heap.len() < k {
        heap.push(row);
        let last = heap.len() - 1;
        sift_up(heap, last, cmp);
    } else if cmp(&row, &heap[0]) == Ordering::Less {
        heap[0] = row;
        sift_down(heap, 0, cmp);
    }
}

fn sift_up(heap: &mut [Row], mut i: usize, cmp: &impl Fn(&Row, &Row) -> Ordering) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if cmp(&heap[i], &heap[parent]) == Ordering::Greater {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down(heap: &mut [Row], mut i: usize, cmp: &impl Fn(&Row, &Row) -> Ordering) {
    loop {
        let left = 2 * i + 1;
        let right = 2 * i + 2;
        let mut largest = i;
        if left < heap.len() && cmp(&heap[left], &heap[largest]) == Ordering::Greater {
            largest = left;
        }
        if right < heap.len() && cmp(&heap[right], &heap[largest]) == Ordering::Greater {
            largest = right;
        }
        if largest == i {
            break;
        }
        heap.swap(i, largest);
        i = largest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(values: &[i64]) -> RowStream<'_> {
        Box::new(values.iter().map(|v| Ok(Row::new().with("n", *v))))
    }

    fn by_n(a: &Row, b: &Row) -> Ordering {
        a.get("n").unwrap().cmp(b.get("n").unwrap())
    }

    fn ns(rows: &[Row]) -> Vec<i64> {
        rows.iter().map(|r| r.get("n").unwrap().as_int().unwrap()).collect()
    }

    #[test]
    fn top_k_matches_sort_then_truncate() {
        let values = [5i64, 1, 9, 3, 7, 3, 8, 0, 2, 6];
        let meter = Residency::default();
        let top = top_k(rows(&values), 4, by_n, &meter).unwrap();
        assert_eq!(ns(&top), vec![0, 1, 2, 3]);
        assert_eq!(meter.peak(), 4, "buffer bounded at k");
    }

    #[test]
    fn top_k_handles_short_inputs_and_zero() {
        let meter = Residency::default();
        let top = top_k(rows(&[2, 1]), 10, by_n, &meter).unwrap();
        assert_eq!(ns(&top), vec![1, 2]);
        assert!(top_k(rows(&[1, 2]), 0, by_n, &meter).unwrap().is_empty());
    }

    #[test]
    fn residency_tracks_the_peak() {
        let meter = Residency::default();
        meter.add(3);
        meter.add(2);
        assert_eq!(meter.peak(), 5);
        meter.add(1);
        assert_eq!(meter.peak(), 6);
    }

    #[test]
    fn errors_propagate_through_collect_and_top_k() {
        let failing: RowStream<'_> = Box::new(
            [Ok(Row::new().with("n", 1)), Err(QueryError::DirtyRestart)].into_iter(),
        );
        let meter = Residency::default();
        assert!(matches!(
            collect_stream(failing, &meter),
            Err(QueryError::DirtyRestart)
        ));
        let failing: RowStream<'_> = Box::new(
            [Ok(Row::new().with("n", 1)), Err(QueryError::DirtyRestart)].into_iter(),
        );
        assert!(matches!(
            top_k(failing, 5, by_n, &meter),
            Err(QueryError::DirtyRestart)
        ));
    }
}
