//! Phase 4 of the query pipeline: the **physical plan** and its execution.
//!
//! A [`PhysicalPlan`] is the compiled, cacheable form of one SELECT: every
//! name resolved to interned [`Symbol`]s, every planning decision (access
//! paths, join order, pushdowns, serial-vs-partitioned operators) frozen,
//! and parameters left as slots.  Executing it
//! ([`Executor::execute_plan`]) substitutes fresh parameter values into the
//! condition templates and drives the same pull-based [`RowStream`]
//! operator pipeline the executor has always used: scan → projected decode
//! → filter → hash joins (build side materialized, probe side streamed) →
//! residual filter → aggregate / top-k / take → project.
//!
//! Because the plan only freezes decisions the pre-planner executor made
//! deterministically per statement, executing a plan charges **exactly**
//! the simulated costs of the old single-shot path — pinned by the
//! committed `BENCH_report.json` sim figures.

use crate::bind::{
    eq_filter_row, eq_filter_values, range_filter_bounds, BoundCondition, BoundOperand,
    PlannedCondition,
};
use crate::catalog::TableDef;
use crate::executor::{stored_row_is_dirty, AccessPath, Executor};
use crate::plan::LogicalPlan;
use crate::result::{QueryError, QueryResult};
use crate::stream::{collect_stream, par_top_k, top_k, Residency, RowStream};
use nosql_store::ops::Scan;
use relational::{encode_key, Row, Symbol, Value, KEY_DELIMITER};
use sql::AggregateFunction;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap}; // lint-allow(determinism): join build tables below are probe-only

/// How the rows of one alias are decoded into relational rows: the output
/// symbols (qualified under the alias for multi-table statements) and the
/// projection mask, resolved once at plan time.
#[derive(Debug, Clone)]
pub(crate) struct DecodeSpec {
    /// Alias-qualified output symbols, indexed by the table's column order
    /// (`None` for single-table statements, which decode bare names).
    pub qual_syms: Option<Vec<Symbol>>,
    /// Projection mask over the table's columns (`None` = decode all).
    pub mask: Option<Vec<bool>>,
}

/// Access details for an [`AccessPath::IndexScan`] alias.
#[derive(Debug, Clone)]
pub(crate) struct IndexAccess {
    /// The index table's definition (shared with the catalog).
    pub def: std::sync::Arc<TableDef>,
    /// True when the index covers every needed column (no base-table
    /// lookups required).
    pub covered: bool,
    /// Decode spec against the index table (used when covered).
    pub decode: DecodeSpec,
}

/// Everything the physical phase needs to open one alias's row stream.
#[derive(Debug, Clone)]
pub(crate) struct AliasAccess {
    /// The chosen access path.
    pub path: AccessPath,
    /// Decode spec against the base table.
    pub decode: DecodeSpec,
    /// Present when `path` is an index scan.
    pub index: Option<IndexAccess>,
}

/// One hash-join step: which alias joins in, on which conditions, with the
/// join-key symbols pre-resolved for both sides.
#[derive(Debug, Clone)]
pub(crate) struct JoinStep {
    /// Index of the newly joined alias (the build side).
    pub alias: usize,
    /// Indices of the equi-join conditions this step enforces.
    pub cond_idxs: Vec<usize>,
    /// Join-key symbols on the probe (already-joined) side.
    pub left_syms: Vec<Symbol>,
    /// Join-key symbols on the build side (alias-qualified).
    pub right_syms: Vec<Symbol>,
    /// True when this join runs hash-partitioned across the pool.
    pub partitioned: bool,
}

/// One resolved select item of an aggregate/GROUP BY output row.
#[derive(Debug, Clone)]
pub(crate) enum ItemPlan {
    Aggregate {
        function: AggregateFunction,
        argument: Option<Symbol>,
        name: Symbol,
    },
    Column {
        lookup: Symbol,
        out: Symbol,
        alias: Option<Symbol>,
    },
    Wildcard,
}

/// The aggregate/GROUP BY sub-plan: grouping symbols (qualified + bare
/// output forms) and the resolved select items.
#[derive(Debug, Clone)]
pub(crate) struct GroupPlan {
    /// `(qualified, bare)` output symbols per GROUP BY column.
    pub group_syms: Vec<(Symbol, Symbol)>,
    /// Resolved select items.
    pub items: Vec<ItemPlan>,
}

/// The compiled form of one SELECT: bound, optimized, parameter slots open.
///
/// Built by the optimizer (see [`crate::Session`] and
/// [`Executor::plan_select`]), executed any number of times with fresh
/// positional parameters via [`Executor::execute_plan`], and rendered as a
/// stable plan tree via [`PhysicalPlan::explain`].
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// `(alias, table definition)` per FROM entry, statement order
    /// (definitions shared with the catalog the plan was compiled from).
    pub(crate) aliases: Vec<(String, std::sync::Arc<TableDef>)>,
    /// Resolved WHERE conjuncts with open parameter slots.
    pub(crate) conditions: Vec<PlannedCondition>,
    /// Per alias: indices of its single-alias filter conditions.
    pub(crate) single_alias: Vec<Vec<usize>>,
    /// Index of the starting (probe-side) alias.
    pub(crate) start: usize,
    /// Hash-join steps in execution order.
    pub(crate) join_steps: Vec<JoinStep>,
    /// Indices of residual conditions evaluated after all joins.
    pub(crate) residual: Vec<usize>,
    /// Per-alias access decisions (same order as `aliases`).
    pub(crate) access: Vec<AliasAccess>,
    /// Row limit pushed into the store scan (0 = none).
    pub(crate) store_limit: usize,
    /// True when a bare LIMIT stops pulling the pipeline early (which keeps
    /// the source and joins on the lazily-pulled serial operators).
    pub(crate) limit_stops_early: bool,
    /// The statement's `LIMIT k`, if any.
    pub(crate) limit: Option<usize>,
    /// The aggregate/GROUP BY sub-plan, when the statement aggregates.
    pub(crate) group: Option<GroupPlan>,
    /// Resolved ORDER BY keys (`(symbol, descending)`).
    pub(crate) order_keys: Vec<(Symbol, bool)>,
    /// Final projection as `(lookup, output)` symbol pairs (`None` =
    /// identity: wildcard or aggregate output).
    pub(crate) project: Option<Vec<(Symbol, Symbol)>>,
    /// Worker count the plan was compiled for (1 = serial pipeline).
    pub(crate) threads: usize,
    /// The logical plan this physical plan was compiled from (EXPLAIN).
    pub(crate) logical: LogicalPlan,
    /// Catalog version at plan time; plan caches treat a mismatch as stale.
    pub(crate) catalog_version: u64,
}

impl PhysicalPlan {
    /// Renders the stable, indented plan tree — the `EXPLAIN` text.
    pub fn explain(&self) -> String {
        self.logical.render()
    }

    /// The logical plan this physical plan was compiled from.
    pub fn logical(&self) -> &LogicalPlan {
        &self.logical
    }

    /// The catalog version this plan was compiled against.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// The worker count the plan was compiled for (1 = serial pipeline).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Whether an alias stream feeds the pipeline (probe side) or a hash-join
/// build side — the two differ in limit pushdown and parallelism choices.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SourceRole {
    Start,
    Build,
}

/// A hash-join key; the single-condition case (all of TPC-W's joins)
/// carries the value inline instead of allocating a per-row vector.  Keys
/// own their values so the build map can outlive the probe stream's
/// borrows; TPC-W join keys are integers, so the clone is a copy.
#[derive(Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    One(Value),
    Many(Vec<Value>),
}

impl JoinKey {
    /// Extracts the join key of `row`; `None` if any key column is absent.
    fn of(row: &Row, syms: &[Symbol]) -> Option<JoinKey> {
        match syms {
            [sym] => row.get_interned(sym).cloned().map(JoinKey::One),
            _ => syms
                .iter()
                .map(|sym| row.get_interned(sym).cloned())
                .collect::<Option<Vec<Value>>>()
                .map(JoinKey::Many),
        }
    }
}

/// A borrowed decode context: the plan's decode spec applied to one table
/// definition (the executable form of [`DecodeSpec`]).
#[derive(Clone, Copy)]
struct DecodeCtx<'a> {
    def: &'a TableDef,
    qual_syms: Option<&'a [Symbol]>,
    mask: Option<&'a [bool]>,
}

impl<'a> DecodeCtx<'a> {
    fn new(def: &'a TableDef, spec: &'a DecodeSpec) -> Self {
        DecodeCtx {
            def,
            qual_syms: spec.qual_syms.as_deref(),
            mask: spec.mask.as_deref(),
        }
    }

    fn decode(&self, stored: &nosql_store::ResultRow) -> Row {
        match self.qual_syms {
            Some(syms) => self.def.decode_row_qualified(stored, syms, self.mask),
            None => match self.mask {
                Some(mask) => self.def.decode_row_projected(stored, mask),
                None => self.def.decode_row(stored),
            },
        }
    }
}

/// A full-scan source running at `threads`-way parallelism: pulls batches
/// of stored rows from a region-parallel cursor and decodes each batch on
/// the pool, preserving row order.  Dirty markers surface as
/// [`QueryError::DirtyRestart`] exactly as in the serial stream (the whole
/// statement restarts, so decoding a batch past the marker is only wasted
/// work, never wrong results).
struct ParDecodeStream<'a> {
    cursor: nosql_store::ParScanCursor,
    ctx: DecodeCtx<'a>,
    dirty_protection: bool,
    threads: usize,
    batch: std::vec::IntoIter<Result<Row, QueryError>>,
}

impl Iterator for ParDecodeStream<'_> {
    type Item = Result<Row, QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.batch.next() {
                return Some(row);
            }
            // One store page per worker per batch keeps decode parallelism
            // aligned with the scan fan-out without unbounded buffering.
            let batch_rows = self.threads * nosql_store::SCAN_PAGE_ROWS;
            let stored: Vec<nosql_store::ResultRow> =
                self.cursor.by_ref().take(batch_rows).collect();
            if stored.is_empty() {
                return None;
            }
            let ctx = self.ctx;
            let dirty_protection = self.dirty_protection;
            self.batch = pool::map(stored, self.threads, |row| {
                if dirty_protection && stored_row_is_dirty(&row) {
                    return Err(QueryError::DirtyRestart);
                }
                Ok(ctx.decode(&row))
            })
            .into_iter();
        }
    }
}

impl Executor {
    /// Executes a compiled plan with positional parameters.  A statement
    /// whose streamed scans observe a dirty marker restarts (the
    /// read-committed protocol of paper §VIII-C), exactly as the one-shot
    /// path always has.
    pub fn execute_plan(
        &self,
        plan: &PhysicalPlan,
        params: &[Value],
    ) -> Result<QueryResult, QueryError> {
        let mut attempts = 0;
        loop {
            match self.run_plan(plan, params) {
                Err(QueryError::DirtyRestart) => {
                    attempts += 1;
                    if attempts > self.dirty_retry_limit() {
                        return Err(QueryError::DirtyReadRetriesExhausted);
                    }
                    // Give the in-flight update a chance to finish.
                    std::thread::yield_now();
                }
                other => return other,
            }
        }
    }

    /// One execution attempt: bind parameters into the condition templates,
    /// then drive the operator pipeline the plan describes.
    fn run_plan(&self, plan: &PhysicalPlan, params: &[Value]) -> Result<QueryResult, QueryError> {
        let bound: Vec<BoundCondition> = plan
            .conditions
            .iter()
            .map(|c| c.bind(params))
            .collect::<Result<_, _>>()?;

        let meter = Residency::default();

        // Source: the start alias's scan/get stream.
        let mut stream = self.alias_stream(plan, plan.start, &bound, SourceRole::Start)?;

        // Hash joins: each step materializes its build side (the newly
        // joined alias) and streams the probe side through it.
        for step in &plan.join_steps {
            let right_stream = self.alias_stream(plan, step.alias, &bound, SourceRole::Build)?;
            let right_rows = collect_stream(right_stream, &meter)?;
            stream = if step.partitioned {
                self.par_hash_join(stream, right_rows, step, &meter, plan.threads)?
            } else {
                self.hash_join_stream(stream, right_rows, step)
            };
        }

        if !plan.residual.is_empty() {
            let residual: Vec<&BoundCondition> =
                plan.residual.iter().map(|&i| &bound[i]).collect();
            stream = Box::new(stream.filter(move |row| match row {
                Ok(row) => residual.iter().all(|c| evaluate_condition(row, c)),
                Err(_) => true,
            }));
        }

        let rows: Vec<Row> = if let Some(group) = &plan.group {
            // Aggregation needs the whole input; ORDER BY + LIMIT then act
            // on the (small) per-group output.
            let input = collect_stream(stream, &meter)?;
            let mut rows = apply_group_and_aggregates(group, input);
            if !plan.order_keys.is_empty() {
                let cmp = order_comparator(&plan.order_keys);
                rows.sort_by(|a, b| cmp(a, b));
            }
            if let Some(limit) = plan.limit {
                rows.truncate(limit);
            }
            rows
        } else if !plan.order_keys.is_empty() {
            let cmp = order_comparator(&plan.order_keys);
            match plan.limit {
                // Per-worker bounded heaps merged at the barrier: each
                // worker selects its chunk's k best, the merge re-selects
                // over the ≤ threads·k survivors.  The width is the plan's
                // frozen decision, so execution always matches what the
                // rendered plan tree documents.
                Some(limit) if plan.threads > 1 => {
                    par_top_k(stream, limit, cmp, &meter, plan.threads)?
                }
                // Bounded top-k heap: k rows resident instead of the full
                // input.
                Some(limit) => top_k(stream, limit, cmp, &meter)?,
                None => {
                    let mut rows = collect_stream(stream, &meter)?;
                    rows.sort_by(|a, b| cmp(a, b));
                    rows
                }
            }
        } else if let Some(limit) = plan.limit {
            // Plain LIMIT: stop pulling the pipeline after `limit` rows.
            // The bound is checked *before* each pull — pulling one row past
            // the limit could fetch (and charge) a whole extra store page.
            let mut rows = Vec::with_capacity(limit.min(1_024));
            while rows.len() < limit {
                let Some(row) = stream.next() else { break };
                rows.push(row?);
                meter.add(1);
            }
            rows
        } else {
            collect_stream(stream, &meter)?
        };

        let rows = project_rows(&plan.project, rows);
        self.cluster()
            .clock()
            .charge(self.cluster().cost_model().client_result_cost(rows.len() as u64));
        Ok(QueryResult::with_rows(rows).with_peak_rows_resident(meter.peak()))
    }

    /// Opens the stream of one alias's rows following the plan's access
    /// decision: the scan cursor (or point Get), mapped through dirty
    /// detection and projected decode, filtered by the alias's single-alias
    /// conditions.
    ///
    /// A dirty marker observed anywhere in the stream surfaces as
    /// [`QueryError::DirtyRestart`], which restarts the whole statement.
    /// The plan's store-level limit applies only to the start alias; a bare
    /// LIMIT downstream keeps the start source on the serial cursor (the
    /// batch-eager parallel source would forfeit early termination), while
    /// build sides are always fully drained and may parallelize freely.
    fn alias_stream<'a>(
        &'a self,
        plan: &'a PhysicalPlan,
        ai: usize,
        bound: &[BoundCondition],
        role: SourceRole,
    ) -> Result<RowStream<'a>, QueryError> {
        let (_, def) = &plan.aliases[ai];
        let access = &plan.access[ai];
        let eq_filters = eq_filter_values(&plan.conditions, bound, &plan.single_alias[ai]);
        let (store_limit, prefer_serial) = match role {
            SourceRole::Start => (plan.store_limit, plan.limit_stops_early),
            SourceRole::Build => (0, false),
        };
        let ctx = DecodeCtx::new(def, &access.decode);

        let base: RowStream<'a> = match &access.path {
            AccessPath::KeyGet => {
                let key = def.encode_row_key(&eq_filter_row(&eq_filters));
                let row = match self.cluster().get(&def.name, self.bounded_get(key))? {
                    Some(stored) => {
                        if self.is_dirty(&stored) {
                            return Err(QueryError::DirtyRestart);
                        }
                        Some(ctx.decode(&stored))
                    }
                    None => None,
                };
                Box::new(row.into_iter().map(Ok))
            }
            AccessPath::KeyPrefixScan => {
                let key_row = eq_filter_row(&eq_filters);
                // Use as many leading key components as are bound.
                let n_bound = def
                    .key
                    .iter()
                    .take_while(|k| eq_filters.contains_key(*k))
                    .count();
                let mut prefix = def.encode_key_prefix(&key_row, n_bound);
                if n_bound < def.key.len() {
                    // Close the last bound component so that e.g. "42"
                    // does not also match keys starting with "420".
                    prefix.push(KEY_DELIMITER);
                }
                let scan = Scan::prefix(prefix)
                    .with_columns(self.scan_projection(def, ctx.mask));
                let cursor = self.cluster().scan_stream(&def.name, self.bounded_scan(scan))?;
                Box::new(cursor.map(move |stored| {
                    if self.is_dirty(&stored) {
                        return Err(QueryError::DirtyRestart);
                    }
                    Ok(ctx.decode(&stored))
                }))
            }
            AccessPath::IndexScan { .. } => {
                let index = access
                    .index
                    .as_ref()
                    // lint-allow(panic-freedom): planner sets `index` for every IndexScan it emits
                    .expect("index access carries its index table definition");
                let index_def = &index.def;
                let filter_value = eq_filters
                    .get(&index_def.key[0])
                    .cloned()
                    .unwrap_or(Value::Null);
                let mut prefix = encode_key([&filter_value]);
                if index_def.key.len() > 1 {
                    // Match only complete values of the indexed column.
                    prefix.push(KEY_DELIMITER);
                }
                if index.covered {
                    let index_ctx = DecodeCtx::new(index_def, &index.decode);
                    let scan = Scan::prefix(prefix)
                        .with_columns(self.scan_projection(index_def, index_ctx.mask));
                    let cursor =
                        self.cluster().scan_stream(&index_def.name, self.bounded_scan(scan))?;
                    Box::new(cursor.map(move |stored| {
                        if self.is_dirty(&stored) {
                            return Err(QueryError::DirtyRestart);
                        }
                        Ok(index_ctx.decode(&stored))
                    }))
                } else {
                    // Stream the index entries and look up each base row by
                    // primary key as it is pulled; the index row is decoded
                    // bare (it only feeds key encoding).
                    let cursor = self
                        .cluster()
                        .scan_stream(&index_def.name, self.bounded_scan(Scan::prefix(prefix)))?;
                    Box::new(
                        cursor
                            .map(move |stored| -> Result<Option<Row>, QueryError> {
                                if self.is_dirty(&stored) {
                                    return Err(QueryError::DirtyRestart);
                                }
                                let index_row = index_def.decode_row(&stored);
                                let base_key = ctx.def.encode_row_key(&index_row);
                                match self
                                    .cluster()
                                    .get(&ctx.def.name, self.bounded_get(base_key))?
                                {
                                    Some(base) => {
                                        if self.is_dirty(&base) {
                                            return Err(QueryError::DirtyRestart);
                                        }
                                        Ok(Some(ctx.decode(&base)))
                                    }
                                    None => Ok(None),
                                }
                            })
                            .filter_map(Result::transpose),
                    )
                }
            }
            AccessPath::KeyRangeScan => {
                // The planner froze the *shape* (both-sided range filters
                // on `key[0]`); the concrete `[lo, hi]` envelope comes from
                // the bound parameter values per execution.  When the
                // encoded bounds are order-safe the store walk is clamped
                // to them; otherwise the walk degrades to a full scan —
                // either way the single-alias stream filters below re-check
                // every row, so the clamp is purely a cost optimization.
                let bounds = range_filter_bounds(
                    &plan.conditions,
                    bound,
                    &plan.single_alias[ai],
                    &def.key[0],
                );
                let scan = match bounds.as_ref().and_then(|(lo, hi)| range_scan_bounds(lo, hi)) {
                    Some((start, stop)) => Scan::range(start, stop),
                    None => Scan::all(),
                }
                .with_columns(self.scan_projection(def, ctx.mask));
                let cursor = self.cluster().scan_stream(&def.name, self.bounded_scan(scan))?;
                Box::new(cursor.map(move |stored| {
                    if self.is_dirty(&stored) {
                        return Err(QueryError::DirtyRestart);
                    }
                    Ok(ctx.decode(&stored))
                }))
            }
            AccessPath::FullScan => {
                let scan = Scan::all()
                    .with_limit(store_limit)
                    .with_columns(self.scan_projection(def, ctx.mask));
                // Parallel source: region-partitioned scan workers feeding
                // batch-parallel decode.  Limit-pushed scans stay serial —
                // they touch O(k) rows, below any fan-out's break-even —
                // as do sources a bare LIMIT will stop pulling early.  The
                // width is the plan's frozen decision (`plan.threads`), not
                // the executing executor's configuration.
                if plan.threads > 1 && store_limit == 0 && !prefer_serial {
                    let cursor = self.cluster().par_scan_stream(
                        &def.name,
                        self.bounded_scan(scan),
                        plan.threads,
                    )?;
                    Box::new(ParDecodeStream {
                        cursor,
                        ctx,
                        dirty_protection: self.dirty_protection(),
                        threads: plan.threads,
                        batch: Vec::new().into_iter(),
                    })
                } else {
                    let cursor = self.cluster().scan_stream(&def.name, self.bounded_scan(scan))?;
                    Box::new(cursor.map(move |stored| {
                        if self.is_dirty(&stored) {
                            return Err(QueryError::DirtyRestart);
                        }
                        Ok(ctx.decode(&stored))
                    }))
                }
            }
        };

        // Apply every single-alias filter (equality and range) on the
        // stream; residual multi-alias conditions are applied after joins.
        if plan.single_alias[ai].is_empty() {
            return Ok(base);
        }
        let conds: Vec<BoundCondition> = plan.single_alias[ai]
            .iter()
            .map(|&i| bound[i].clone())
            .collect();
        Ok(Box::new(base.filter(move |row| match row {
            Ok(row) => conds.iter().all(|c| {
                let left = row.get_interned(&c.left_sym);
                match (&c.right, left) {
                    (BoundOperand::Value(v), Some(l)) => c.op.evaluate(l, v),
                    _ => false,
                }
            }),
            Err(_) => true,
        })))
    }

    /// Client-side hash join: the build side (`right`, the newly joined
    /// alias) is materialized and hashed; the probe side streams through it
    /// row by row, so the intermediate result is never buffered.  Charges
    /// shuffle cost per row on both sides and probe cost per probe —
    /// identical totals to the former materialized join when the stream is
    /// fully consumed, and strictly less when a LIMIT stops it early.
    ///
    /// Both sides are frozen, so every emitted row shares its left and
    /// right halves as `Arc` slices ([`Row::join_concat`]) with the input
    /// rows instead of deep-cloning the entries.
    fn hash_join_stream<'a>(
        &'a self,
        left: RowStream<'a>,
        mut right: Vec<Row>,
        step: &JoinStep,
    ) -> RowStream<'a> {
        let model = self.cluster().cost_model();
        self.cluster()
            .clock()
            .charge(model.shuffle_cost(right.len() as u64));
        for row in &mut right {
            row.freeze();
        }

        if step.cond_idxs.is_empty() {
            // Cross join (rare; only used when the workload really asks for it).
            return Box::new(left.flat_map(move |l| -> Vec<Result<Row, QueryError>> {
                match l {
                    Err(e) => vec![Err(e)],
                    Ok(mut l) => {
                        self.cluster().clock().charge(model.shuffle_cost(1));
                        l.freeze();
                        right.iter().map(|r| Ok(l.join_concat(r))).collect()
                    }
                }
            }));
        }

        let left_syms = step.left_syms.clone();
        let right_syms = &step.right_syms;

        // Build side: hash the right rows on the join attribute values.
        // lint-allow(determinism): probe-only hash table; output order follows `left`, never this map
        let mut build: HashMap<JoinKey, Vec<usize>> = HashMap::with_capacity(right.len());
        for (i, row) in right.iter().enumerate() {
            if let Some(key) = JoinKey::of(row, right_syms) {
                build.entry(key).or_default().push(i);
            }
        }

        Box::new(left.flat_map(move |l| -> Vec<Result<Row, QueryError>> {
            match l {
                Err(e) => vec![Err(e)],
                Ok(mut l) => {
                    self.cluster()
                        .clock()
                        .charge(model.shuffle_cost(1) + model.probe_cost(1));
                    l.freeze();
                    let Some(key) = JoinKey::of(&l, &left_syms) else {
                        return Vec::new();
                    };
                    match build.get(&key) {
                        Some(matches) => matches
                            .iter()
                            .map(|&i| Ok(l.join_concat(&right[i])))
                            .collect(),
                        None => Vec::new(),
                    }
                }
            }
        }))
    }

    /// Partitioned parallel hash join.  The build side is hash-partitioned
    /// into `threads` independent hash tables built concurrently; the probe
    /// side is materialized (metered through `meter`, since the rows really
    /// are resident), chunked contiguously, and each chunk probes the shared
    /// read-only partition tables on its own worker.  Chunk outputs
    /// concatenate in probe order and partition tables preserve build-row
    /// order per key, so the emitted rows are **identical, order included**,
    /// to [`Executor::hash_join_stream`].
    ///
    /// Sim accounting follows the parallel merge rule: the build-side
    /// shuffle charges in full (sum — every row is shipped by some worker),
    /// while the per-probe-row shuffle + probe cost charges for the largest
    /// chunk only (max — workers probe concurrently).
    fn par_hash_join<'a>(
        &'a self,
        left: RowStream<'a>,
        mut right: Vec<Row>,
        step: &JoinStep,
        meter: &Residency,
        threads: usize,
    ) -> Result<RowStream<'a>, QueryError> {
        let model = self.cluster().cost_model();
        self.cluster()
            .clock()
            .charge(model.shuffle_cost(right.len() as u64));
        for row in &mut right {
            row.freeze();
        }

        // Partition pass (serial, O(build), one key extraction per row),
        // then per-partition table builds on the pool.  Indices stay
        // ascending within a partition, so each key's match list keeps
        // build-row order.
        let mut partitions: Vec<Vec<(JoinKey, usize)>> = vec![Vec::new(); threads];
        for (i, row) in right.iter().enumerate() {
            if let Some(key) = JoinKey::of(row, &step.right_syms) {
                partitions[partition_of(&key, threads)].push((key, i));
            }
        }
        // lint-allow(determinism): probe-only hash tables; output order follows `left`, never these maps
        let tables: Vec<HashMap<JoinKey, Vec<usize>>> =
            pool::map(partitions, threads, |entries| {
                let mut table: HashMap<JoinKey, Vec<usize>> = // lint-allow(determinism): probe-only
                    HashMap::with_capacity(entries.len()); // lint-allow(determinism): probe-only
                for (key, i) in entries {
                    table.entry(key).or_default().push(i);
                }
                table
            });

        // Probe side: materialize and meter, then probe chunk-parallel.
        let probe = collect_stream(left, meter)?;
        let ranges = pool::chunk_ranges(probe.len(), threads);
        let largest_chunk = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0) as u64;
        self.cluster()
            .clock()
            .charge(model.shuffle_cost(largest_chunk) + model.probe_cost(largest_chunk));
        let tables_ref = &tables;
        let left_syms_ref = &step.left_syms;
        let right_ref = &right;
        let outputs: Vec<Vec<Row>> = pool::map_chunked(probe, threads, |chunk| {
            let mut out = Vec::new();
            for mut l in chunk {
                l.freeze();
                let Some(key) = JoinKey::of(&l, left_syms_ref) else {
                    continue;
                };
                if let Some(matches) = tables_ref[partition_of(&key, threads)].get(&key) {
                    out.extend(matches.iter().map(|&i| l.join_concat(&right_ref[i])));
                }
            }
            out
        });
        Ok(Box::new(outputs.into_iter().flatten().map(Ok)))
    }
}

// ----------------------------------------------------------------------
// Helpers (free functions so they are easy to unit test)
// ----------------------------------------------------------------------

/// The hash partition a join key belongs to.  `DefaultHasher::new()` is
/// deterministic (fixed keys), so build and probe agree — and repeated runs
/// partition identically, keeping parallel sim figures reproducible.
/// Store-scan bounds `[start, stop)` covering every key whose leading
/// component lies in the inclusive value interval `[lo, hi]`, or `None`
/// when encoded keys do not sort like the values over that interval
/// (integers encode as plain decimal, so unequal digit widths or negative
/// values break lexicographic order).  `stop` appends a byte just above
/// [`KEY_DELIMITER`] so composite keys sharing the `hi` leading component
/// stay inside the window while the next distinct value stays out.
fn range_scan_bounds(lo: &Value, hi: &Value) -> Option<(String, String)> {
    let safe = lo == hi
        || match (lo, hi) {
            (Value::Str(a), Value::Str(b)) => a <= b,
            (Value::Int(a), Value::Int(b)) => {
                *a >= 0 && *b >= *a && decimal_width(*a) == decimal_width(*b)
            }
            _ => false,
        };
    if !safe {
        return None;
    }
    let start = encode_key([lo]);
    let mut stop = encode_key([hi]);
    stop.push(RANGE_STOP_SENTINEL);
    Some((start, stop))
}

/// One code point above [`KEY_DELIMITER`] and below every encodable value
/// byte: appended to an encoded leading component it upper-bounds all of
/// that component's composite keys.
const RANGE_STOP_SENTINEL: char = '\u{2}';

fn decimal_width(v: i64) -> usize {
    v.to_string().len()
}

fn partition_of(key: &JoinKey, parts: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % parts.max(1) as u64) as usize
}

/// Evaluates any bound condition against a joined row (used for residual
/// predicates).  Conditions whose columns are absent evaluate to true so that
/// filters already applied during the per-alias fetch are not re-applied
/// against rows that legitimately dropped reserved columns.
fn evaluate_condition(row: &Row, c: &BoundCondition) -> bool {
    let Some(left) = row.get_interned(&c.left_sym) else {
        return true;
    };
    match &c.right {
        BoundOperand::Value(v) => c.op.evaluate(left, v),
        BoundOperand::Column(sym) => match row.get_interned(sym) {
            Some(r) => c.op.evaluate(left, r),
            None => true,
        },
    }
}

/// Evaluates the aggregate/GROUP BY sub-plan over the joined input rows.
fn apply_group_and_aggregates(plan: &GroupPlan, rows: Vec<Row>) -> Vec<Row> {
    // Group rows by the GROUP BY key (a single group when absent).
    let mut groups: BTreeMap<Vec<Value>, Vec<Row>> = BTreeMap::new();
    for row in rows {
        let key: Vec<Value> = plan
            .group_syms
            .iter()
            .map(|(sym, _)| row.get_interned(sym).cloned().unwrap_or(Value::Null))
            .collect();
        groups.entry(key).or_default().push(row);
    }
    if groups.is_empty() && plan.group_syms.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    let mut out = Vec::new();
    for (key, members) in groups {
        let mut row = Row::new();
        for (i, (qualified, bare)) in plan.group_syms.iter().enumerate() {
            row.set_interned(qualified.clone(), key[i].clone());
            row.set_interned(bare.clone(), key[i].clone());
        }
        for item in &plan.items {
            match item {
                ItemPlan::Aggregate {
                    function,
                    argument,
                    name,
                } => {
                    let value = compute_aggregate(*function, argument.as_ref(), &members);
                    row.set_interned(name.clone(), value);
                }
                ItemPlan::Column { lookup, out, alias } => {
                    let value = members
                        .first()
                        .and_then(|m| m.get_interned(lookup))
                        .cloned()
                        .unwrap_or(Value::Null);
                    row.set_interned(out.clone(), value.clone());
                    if let Some(a) = alias {
                        row.set_interned(a.clone(), value);
                    }
                }
                ItemPlan::Wildcard => {
                    if let Some(first) = members.first() {
                        for (sym, v) in first.iter_interned() {
                            row.set_interned(sym.clone(), v.clone());
                        }
                    }
                }
            }
        }
        out.push(row);
    }
    out
}

fn compute_aggregate(
    function: AggregateFunction,
    argument: Option<&Symbol>,
    members: &[Row],
) -> Value {
    let values: Vec<&Value> = match argument {
        None => return Value::Int(members.len() as i64),
        Some(sym) => members
            .iter()
            .filter_map(|m| m.get_interned(sym))
            .filter(|v| !v.is_null())
            .collect(),
    };
    match function {
        AggregateFunction::Count => Value::Int(values.len() as i64),
        AggregateFunction::Sum => {
            let sum: f64 = values.iter().filter_map(|v| v.as_float()).sum();
            if values.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggregateFunction::Avg => {
            if values.is_empty() {
                Value::Null
            } else {
                let sum: f64 = values.iter().filter_map(|v| v.as_float()).sum();
                Value::Float(sum / values.len() as f64)
            }
        }
        AggregateFunction::Min => values.iter().min().copied().cloned().unwrap_or(Value::Null),
        AggregateFunction::Max => values.iter().max().copied().cloned().unwrap_or(Value::Null),
    }
}

/// The ORDER BY comparator over the plan's resolved sort keys; shared by
/// the full sort and the bounded top-k operators.
fn order_comparator(keys: &[(Symbol, bool)]) -> impl Fn(&Row, &Row) -> Ordering + Sync {
    let keys = keys.to_vec();
    move |a: &Row, b: &Row| {
        for (sym, descending) in &keys {
            let av = a.get_interned(sym);
            let bv = b.get_interned(sym);
            let ord = match (av, bv) {
                (Some(a), Some(b)) => a.cmp(b),
                (Some(a), None) => a.cmp(&Value::Null),
                (None, Some(b)) => Value::Null.cmp(b),
                (None, None) => Ordering::Equal,
            };
            let ord = if *descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

/// Applies the plan's final projection (`None` = identity).
fn project_rows(project: &Option<Vec<(Symbol, Symbol)>>, rows: Vec<Row>) -> Vec<Row> {
    let Some(cols) = project else {
        return rows;
    };
    rows.into_iter()
        .map(|row| {
            let mut out = Row::with_capacity(cols.len());
            for (lookup, name) in cols {
                let value = row.get_interned(lookup).cloned().unwrap_or(Value::Null);
                out.set_interned(name.clone(), value);
            }
            out
        })
        .collect()
}
