//! Phase 3 of the query pipeline: the **logical plan** IR.
//!
//! A [`LogicalPlan`] is an operator tree over bound [`Symbol`]s describing
//! *what* a statement computes and which planning decisions the optimizer
//! made: access paths, predicate placement, join order and build sides,
//! pushed-down limits and projections, and serial-vs-partitioned operator
//! choices.  It is the artifact `EXPLAIN` renders — a stable, indented tree
//! whose text is pinned by golden snapshot tests — and the shape the
//! physical plan ([`crate::PhysicalPlan`]) is compiled from.
//!
//! The rendering is intentionally line-oriented and deterministic: one
//! operator per line, children indented two spaces, no volatile data
//! (row counts, timings) — so the same statement planned against the same
//! catalog at the same thread count always explains identically.

use crate::executor::AccessPath;
use relational::{Symbol, Value};
use sql::{Comparison, SelectItem};
use std::fmt;

/// A bound operand as it appears in a plan predicate.
#[derive(Debug, Clone)]
pub enum PlanOperand {
    /// A literal from the statement text.
    Literal(Value),
    /// A positional parameter, rendered as `?N`.
    Param(usize),
    /// A column, rendered as its interned symbol.
    Column(Symbol),
}

impl fmt::Display for PlanOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOperand::Literal(v) => write!(f, "{v}"),
            PlanOperand::Param(i) => write!(f, "?{i}"),
            PlanOperand::Column(sym) => write!(f, "{}", sym.name()),
        }
    }
}

/// A bound predicate `left op right` attached to a plan node.
#[derive(Debug, Clone)]
pub struct PlanPredicate {
    /// Resolved left-hand column.
    pub left: Symbol,
    /// Comparison operator.
    pub op: Comparison,
    /// Right-hand operand.
    pub right: PlanOperand,
}

impl fmt::Display for PlanPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left.name(), self.op, self.right)
    }
}

/// One ORDER BY / top-k sort key: symbol plus direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Resolved sort column.
    pub column: Symbol,
    /// True for `DESC`.
    pub descending: bool,
}

impl fmt::Display for SortKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}",
            self.column.name(),
            if self.descending { "DESC" } else { "ASC" }
        )
    }
}

/// The logical operator tree.  Leaf nodes are [`LogicalPlan::Scan`]s; every
/// other node wraps its input(s).
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// A statement-level rewrite applied before planning (e.g. Synergy's
    /// materialized-view substitution), recorded so the substitution is
    /// visible in the plan rather than hidden in a pre-pass.
    Rewrite {
        /// Name of the rule that fired (e.g. `synergy-view-rewrite`).
        rule: String,
        /// Human-readable description of the substitution.
        note: String,
        /// The plan of the rewritten statement.
        input: Box<LogicalPlan>,
    },
    /// One table access: the chosen access path plus the single-alias
    /// predicates evaluated on this scan's stream.
    Scan {
        /// Physical table name.
        table: String,
        /// Statement alias (equal to `table` when none was written).
        alias: String,
        /// The access path the optimizer chose.
        access: AccessPath,
        /// Single-alias predicates applied on this stream.
        predicates: Vec<PlanPredicate>,
        /// Region-parallel fan-out (1 = serial cursor).
        parallel: usize,
        /// Store-level row limit pushed into the scan (0 = none).
        store_limit: usize,
    },
    /// A client-side hash join: `probe` streams through the hashed `build`
    /// side (the newly joined alias, fully materialized).
    HashJoin {
        /// The streamed probe side (everything joined so far).
        probe: Box<LogicalPlan>,
        /// The materialized build side.
        build: Box<LogicalPlan>,
        /// Alias of the build side (labels the join in renderings).
        build_alias: String,
        /// Equi-join predicates this join enforces (empty = cross join).
        on: Vec<PlanPredicate>,
        /// Hash-partitioned parallel probe at this worker count (1 = serial).
        partitioned: usize,
    },
    /// Residual predicates evaluated against joined rows.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicates that no scan or join could consume.
        predicates: Vec<PlanPredicate>,
    },
    /// GROUP BY / aggregate evaluation (materializes its input).
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Resolved GROUP BY columns.
        group_by: Vec<Symbol>,
        /// The select items, rendered as written (aggregates + columns).
        items: Vec<SelectItem>,
    },
    /// Full sort (ORDER BY without LIMIT).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys in priority order.
        keys: Vec<SortKey>,
    },
    /// Bounded top-k (ORDER BY + LIMIT): k rows resident instead of the
    /// full input.
    TopK {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The `k` of `LIMIT k`.
        k: usize,
        /// Sort keys in priority order.
        keys: Vec<SortKey>,
        /// Per-worker bounded heaps merged at a barrier (1 = serial heap).
        partitioned: usize,
    },
    /// Plain LIMIT: stop pulling the input after `k` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The `k` of `LIMIT k`.
        k: usize,
        /// True when the limit was pushed into the store scan itself (the
        /// store touches exactly `k` rows).
        pushed_to_store: bool,
    },
    /// Final projection onto the selected columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output columns in select-list order.
        columns: Vec<Symbol>,
    },
}

impl LogicalPlan {
    /// Renders the stable, indented plan tree (the `EXPLAIN` text): one
    /// operator per line, children indented two spaces, trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            LogicalPlan::Rewrite { rule, note, input } => {
                out.push_str(&format!("Rewrite [{rule}] {note}\n"));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Scan {
                table,
                alias,
                access,
                predicates,
                parallel,
                store_limit,
            } => {
                out.push_str(&format!("Scan {table}"));
                if alias != table {
                    out.push_str(&format!(" AS {alias}"));
                }
                out.push_str(&format!(" access={}", access_label(access)));
                if *store_limit > 0 {
                    out.push_str(&format!(" limit={store_limit}"));
                }
                if *parallel > 1 {
                    out.push_str(&format!(" parallel=x{parallel}"));
                }
                if !predicates.is_empty() {
                    out.push_str(&format!(" filter=[{}]", join_display(predicates)));
                }
                out.push('\n');
            }
            LogicalPlan::HashJoin {
                probe,
                build,
                build_alias,
                on,
                partitioned,
            } => {
                if on.is_empty() {
                    out.push_str(&format!("CrossJoin build={build_alias}"));
                } else {
                    out.push_str(&format!(
                        "HashJoin on [{}] build={build_alias}",
                        join_display(on)
                    ));
                }
                if *partitioned > 1 {
                    out.push_str(&format!(" partitioned=x{partitioned}"));
                }
                out.push('\n');
                probe.render_into(out, depth + 1);
                build.render_into(out, depth + 1);
            }
            LogicalPlan::Filter { input, predicates } => {
                out.push_str(&format!("Filter [{}]\n", join_display(predicates)));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                items,
            } => {
                out.push_str("Aggregate");
                if !group_by.is_empty() {
                    out.push_str(&format!(" group_by=[{}]", join_names(group_by)));
                }
                out.push_str(&format!(" items=[{}]\n", join_display(items)));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                out.push_str(&format!("Sort by=[{}]\n", join_display(keys)));
                input.render_into(out, depth + 1);
            }
            LogicalPlan::TopK {
                input,
                k,
                keys,
                partitioned,
            } => {
                out.push_str(&format!("TopK k={k} by=[{}]", join_display(keys)));
                if *partitioned > 1 {
                    out.push_str(&format!(" partitioned=x{partitioned}"));
                }
                out.push('\n');
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Limit {
                input,
                k,
                pushed_to_store,
            } => {
                out.push_str(&format!("Limit {k}"));
                if *pushed_to_store {
                    out.push_str(" store-pushdown");
                }
                out.push('\n');
                input.render_into(out, depth + 1);
            }
            LogicalPlan::Project { input, columns } => {
                out.push_str(&format!("Project [{}]\n", join_names(columns)));
                input.render_into(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

fn access_label(access: &AccessPath) -> String {
    match access {
        AccessPath::KeyGet => "get".to_string(),
        AccessPath::KeyPrefixScan => "key-prefix".to_string(),
        AccessPath::KeyRangeScan => "key-range".to_string(),
        AccessPath::IndexScan { index } => format!("index:{index}"),
        AccessPath::FullScan => "full".to_string(),
    }
}

fn join_display<T: fmt::Display>(items: &[T]) -> String {
    items
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn join_names(symbols: &[Symbol]) -> String {
    symbols
        .iter()
        .map(|s| s.name().to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::intern::intern;

    #[test]
    fn renders_a_join_tree_with_stable_indentation() {
        let plan = LogicalPlan::Project {
            columns: vec![intern("c.c_uname")],
            input: Box::new(LogicalPlan::HashJoin {
                probe: Box::new(LogicalPlan::Scan {
                    table: "Customer".into(),
                    alias: "c".into(),
                    access: AccessPath::FullScan,
                    predicates: vec![PlanPredicate {
                        left: intern("c.c_uname"),
                        op: Comparison::Eq,
                        right: PlanOperand::Param(0),
                    }],
                    parallel: 1,
                    store_limit: 0,
                }),
                build: Box::new(LogicalPlan::Scan {
                    table: "Orders".into(),
                    alias: "o".into(),
                    access: AccessPath::FullScan,
                    predicates: vec![],
                    parallel: 4,
                    store_limit: 0,
                }),
                build_alias: "o".into(),
                on: vec![PlanPredicate {
                    left: intern("c.c_id"),
                    op: Comparison::Eq,
                    right: PlanOperand::Column(intern("o.o_c_id")),
                }],
                partitioned: 4,
            }),
        };
        let text = plan.render();
        assert_eq!(
            text,
            "Project [c.c_uname]\n\
             \x20 HashJoin on [c.c_id = o.o_c_id] build=o partitioned=x4\n\
             \x20   Scan Customer AS c access=full filter=[c.c_uname = ?0]\n\
             \x20   Scan Orders AS o access=full parallel=x4\n"
        );
    }

    #[test]
    fn scan_omits_alias_when_it_matches_the_table() {
        let plan = LogicalPlan::Scan {
            table: "Customer".into(),
            alias: "Customer".into(),
            access: AccessPath::KeyGet,
            predicates: vec![],
            parallel: 1,
            store_limit: 0,
        };
        assert_eq!(plan.render(), "Scan Customer access=get\n");
    }

    #[test]
    fn limit_and_rewrite_annotations_render() {
        let plan = LogicalPlan::Rewrite {
            rule: "synergy-view-rewrite".into(),
            note: "V_A__B replaces A, B".into(),
            input: Box::new(LogicalPlan::Limit {
                k: 50,
                pushed_to_store: true,
                input: Box::new(LogicalPlan::Scan {
                    table: "V_A__B".into(),
                    alias: "V_A__B".into(),
                    access: AccessPath::FullScan,
                    predicates: vec![],
                    parallel: 1,
                    store_limit: 50,
                }),
            }),
        };
        let text = plan.render();
        assert!(text.starts_with("Rewrite [synergy-view-rewrite] V_A__B replaces A, B\n"));
        assert!(text.contains("  Limit 50 store-pushdown\n"));
        assert!(text.contains("    Scan V_A__B access=full limit=50\n"));
    }
}
