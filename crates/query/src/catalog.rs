//! Catalog: how logical tables (relations, indexes, views, lock tables) are
//! laid out as NoSQL tables.

use nosql_store::ops::Put;
use nosql_store::ResultRow;
use relational::{encode_key, intern, Row, Symbol, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The column family every attribute is stored in (the paper's baseline
/// transformation assigns all attributes of a relation to a single family).
pub const FAMILY: &str = "cf";

/// Declared type of a column, used to decode stored cells back into values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// Double-precision decimal.
    Float,
    /// UTF-8 string (default).
    #[default]
    Str,
}

impl ColumnType {
    /// Decodes an encoded cell into a [`Value`] of this type.
    pub fn decode(&self, encoded: &str) -> Value {
        if encoded.is_empty() {
            return Value::Null;
        }
        match self {
            ColumnType::Int => encoded.parse().map(Value::Int).unwrap_or(Value::Null),
            ColumnType::Float => encoded.parse().map(Value::Float).unwrap_or(Value::Null),
            ColumnType::Str => Value::Str(encoded.to_string()),
        }
    }
}

/// What role a NoSQL table plays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableKind {
    /// A base relation from the relational schema.
    Base,
    /// A covered index on a base relation or on a view.
    Index {
        /// The relation or view the index belongs to.
        of: String,
    },
    /// A materialized view (created by the Synergy layer).
    View,
    /// A lock table (one per root relation, created by the Synergy layer).
    Lock,
}

/// Layout of one NoSQL table.
///
/// Construction pre-interns every column name and resolves the key
/// attributes to column indices, so row encoding/decoding on the read path
/// never re-hashes or re-allocates a column name.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name in the store.
    pub name: String,
    /// Columns and their types, in declaration order.
    pub columns: Vec<(String, ColumnType)>,
    /// Ordered key attributes; the row key is their delimited concatenation.
    pub key: Vec<String>,
    /// Role of the table.
    pub kind: TableKind,
    /// Interned symbol of every column, in declaration order.
    col_syms: Vec<Symbol>,
    /// Column name → index into `columns`.
    col_index: BTreeMap<String, usize>,
    /// Indices of the key attributes within `columns`.
    key_cols: Vec<usize>,
}

impl PartialEq for TableDef {
    fn eq(&self, other: &Self) -> bool {
        // The cached symbol/index tables derive from the logical fields.
        self.name == other.name
            && self.columns == other.columns
            && self.key == other.key
            && self.kind == other.kind
    }
}

static NULL_VALUE: Value = Value::Null;

impl TableDef {
    /// Creates a table definition.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<(String, ColumnType)>,
        key: Vec<String>,
        kind: TableKind,
    ) -> Self {
        let col_syms: Vec<Symbol> = columns.iter().map(|(n, _)| intern::intern(n)).collect();
        let col_index: BTreeMap<String, usize> = columns
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i))
            .collect();
        let def = TableDef {
            name: name.into(),
            columns,
            key,
            kind,
            col_syms,
            col_index,
            key_cols: Vec::new(),
        };
        let key_cols: Vec<usize> = def
            .key
            .iter()
            .map(|k| {
                *def.col_index.get(k).unwrap_or_else(|| {
                    // lint-allow(panic-freedom): schema construction bug, not a runtime fault path
                    panic!("key attribute {k} is not a column of {}", def.name)
                })
            })
            .collect();
        TableDef { key_cols, ..def }
    }

    /// The interned symbols of the columns, in declaration order.
    pub fn column_symbols(&self) -> &[Symbol] {
        &self.col_syms
    }

    /// Index of a column within [`TableDef::columns`], if it exists.
    pub fn column_position(&self, column: &str) -> Option<usize> {
        self.col_index.get(column).copied()
    }

    /// The declared type of a column, if it exists.
    pub fn column_type(&self, column: &str) -> Option<ColumnType> {
        self.col_index.get(column).map(|&i| self.columns[i].1)
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// True if every key attribute appears in `available` (e.g. the equality
    /// filters of a WHERE clause).
    pub fn key_covered_by(&self, available: &[String]) -> bool {
        self.key.iter().all(|k| available.iter().any(|a| a == k))
    }

    /// Encodes the row key for a row of this table.  Missing key attributes
    /// encode as empty components (callers validate beforehand).
    pub fn encode_row_key(&self, row: &Row) -> String {
        encode_key(
            self.key_cols
                .iter()
                .map(|&i| row.get_interned(&self.col_syms[i]).unwrap_or(&NULL_VALUE)),
        )
    }

    /// Encodes the row-key *prefix* formed by the first `n` key attributes.
    pub fn encode_key_prefix(&self, row: &Row, n: usize) -> String {
        encode_key(
            self.key_cols
                .iter()
                .take(n)
                .map(|&i| row.get_interned(&self.col_syms[i]).unwrap_or(&NULL_VALUE)),
        )
    }

    /// Converts a row into a [`Put`] against this table (all attributes into
    /// the single column family).
    pub fn row_to_put(&self, row: &Row) -> Put {
        let mut put = Put::new(self.encode_row_key(row));
        for (i, (column, _)) in self.columns.iter().enumerate() {
            if let Some(value) = row.get_interned(&self.col_syms[i]) {
                if !value.is_null() {
                    put.add(FAMILY, column.clone(), value.encode());
                }
            }
        }
        put
    }

    /// Decodes a stored [`ResultRow`] back into a relational [`Row`].
    pub fn decode_row(&self, stored: &ResultRow) -> Row {
        self.decode_cells(stored, None, None)
    }

    /// [`TableDef::decode_row`] restricted to the columns whose index is set
    /// in `mask` (projection pushdown: skip decoding unneeded columns).
    pub fn decode_row_projected(&self, stored: &ResultRow, mask: &[bool]) -> Row {
        self.decode_cells(stored, Some(mask), None)
    }

    /// Decodes a stored row directly into alias-qualified attribute names:
    /// `qualified[i]` is the output symbol for column `i` (typically
    /// `"alias.column"`), so the executor produces join-ready rows in a
    /// single pass without an intermediate bare-named row.
    pub fn decode_row_qualified(
        &self,
        stored: &ResultRow,
        qualified: &[Symbol],
        mask: Option<&[bool]>,
    ) -> Row {
        self.decode_cells(stored, mask, Some(qualified))
    }

    /// Single-pass cell-walk decoder.  Walks the returned cells once (they
    /// arrive sorted by family and qualifier) instead of scanning the cell
    /// list per declared column; adjacent duplicate versions of a column
    /// keep the newest timestamp, matching [`ResultRow::value`].
    fn decode_cells(
        &self,
        stored: &ResultRow,
        mask: Option<&[bool]>,
        qualified: Option<&[Symbol]>,
    ) -> Row {
        let mut row = Row::with_capacity(stored.cells.len().min(self.columns.len()));
        let mut last: Option<(usize, nosql_store::Timestamp)> = None;
        // Store-produced rows arrive sorted by (family, qualifier), so each
        // entry appends in O(1) via `push_sorted`; the gate falls back to
        // `set_interned` for hand-built unsorted inputs.
        let mut last_sym: Option<Symbol> = None;
        for cell in &stored.cells {
            if &*cell.family != FAMILY {
                continue;
            }
            let Some(&idx) = self.col_index.get(&*cell.qualifier) else {
                continue;
            };
            if let Some(mask) = mask {
                if !mask[idx] {
                    continue;
                }
            }
            if let Some((last_idx, last_ts)) = last {
                if last_idx == idx && cell.timestamp <= last_ts {
                    continue; // older version of the column just decoded
                }
            }
            let text = String::from_utf8_lossy(&cell.value);
            let value = self.columns[idx].1.decode(&text);
            let sym = match qualified {
                Some(syms) => &syms[idx],
                None => &self.col_syms[idx],
            };
            let in_order = last_sym
                .as_ref()
                .is_none_or(|prev| prev.name() <= sym.name());
            if in_order {
                row.push_sorted(sym.clone(), value);
                last_sym = Some(sym.clone());
            } else {
                row.set_interned(sym.clone(), value);
            }
            last = Some((idx, cell.timestamp));
        }
        row
    }

    /// Approximate bytes of one encoded row, for size estimation.
    pub fn estimate_row_bytes(&self, row: &Row) -> usize {
        self.encode_row_key(row).len() + row.byte_size()
    }
}

/// The catalog: every logical table known to the SQL skin.
///
/// Every mutation stamps the catalog with a process-globally unique
/// [`Catalog::version`], so plan caches (see [`crate::Session`]) can detect
/// that a cached plan was compiled against stale definitions without
/// comparing table contents.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// Definitions are stored behind `Arc` so compiled plans can hold them
    /// without deep-cloning the per-table symbol and index maps on every
    /// planning pass.
    tables: BTreeMap<String, Arc<TableDef>>,
    /// Indexes grouped by the table they index (`TableKind::Index.of`).
    indexes_of: BTreeMap<String, Vec<String>>,
    /// Index tables that exist only for view maintenance (delta-join
    /// probes).  Every write path maintains them like any other index, but
    /// the read optimizer never selects them, so adding one cannot change a
    /// read plan (or its simulated cost).
    maintenance_indexes: std::collections::BTreeSet<String>,
    /// Stamp of the last mutation (globally unique across all catalogs).
    version: u64,
}

/// Logical equality: two catalogs are equal when they define the same
/// tables, regardless of the mutation history that built them (the
/// `version` stamp is cache bookkeeping, not part of the schema).
impl PartialEq for Catalog {
    fn eq(&self, other: &Self) -> bool {
        self.tables == other.tables
            && self.indexes_of == other.indexes_of
            && self.maintenance_indexes == other.maintenance_indexes
    }
}

/// Hands out process-globally unique version stamps for catalog mutations.
fn next_catalog_version() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// The stamp of the last mutation.  Globally unique per mutation, so
    /// two catalogs that went through different mutations never share a
    /// version — the property plan-cache invalidation relies on.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Adds (or replaces) a table definition.
    pub fn add_table(&mut self, def: TableDef) {
        if let TableKind::Index { of } = &def.kind {
            self.indexes_of
                .entry(of.clone())
                .or_default()
                .push(def.name.clone());
        }
        self.tables.insert(def.name.clone(), Arc::new(def));
        self.version = next_catalog_version();
    }

    /// Removes a table definition.
    pub fn remove_table(&mut self, name: &str) {
        if let Some(def) = self.tables.remove(name) {
            if let TableKind::Index { of } = &def.kind {
                if let Some(list) = self.indexes_of.get_mut(of) {
                    list.retain(|n| n != name);
                }
            }
            self.maintenance_indexes.remove(name);
            self.version = next_catalog_version();
        }
    }

    /// Flags an already-added index table as **maintenance-only**: writes
    /// keep it up to date, delta-join probes may use it, but read planning
    /// ignores it (see [`crate::select_probe_access`]).
    pub fn mark_maintenance_index(&mut self, name: &str) {
        if self.maintenance_indexes.insert(name.to_string()) {
            self.version = next_catalog_version();
        }
    }

    /// True when `name` is a maintenance-only index table.
    pub fn is_maintenance_index(&self, name: &str) -> bool {
        self.maintenance_indexes.contains(name)
    }

    /// Looks up a table definition.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(name).map(Arc::as_ref)
    }

    /// Looks up a table definition as a shared handle (what compiled plans
    /// hold — cloning the handle is a reference-count bump, not a copy of
    /// the symbol tables).
    pub fn table_shared(&self, name: &str) -> Option<Arc<TableDef>> {
        self.tables.get(name).cloned()
    }

    /// [`Catalog::table_shared`], ignoring ASCII case.
    pub fn table_shared_ci(&self, name: &str) -> Option<Arc<TableDef>> {
        self.tables.get(name).cloned().or_else(|| {
            self.tables
                .values()
                .find(|t| t.name.eq_ignore_ascii_case(name))
                .cloned()
        })
    }

    /// Looks up a table, ignoring ASCII case (SQL identifiers are case
    /// insensitive in the TPC-W workload).
    pub fn table_ci(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(name).map(Arc::as_ref).or_else(|| {
            self.tables
                .values()
                .find(|t| t.name.eq_ignore_ascii_case(name))
                .map(Arc::as_ref)
        })
    }

    /// Names of index tables defined over `table`.
    pub fn indexes_of(&self, table: &str) -> Vec<&TableDef> {
        self.indexes_of
            .get(table)
            .map(|names| {
                names
                    .iter()
                    .filter_map(|n| self.tables.get(n).map(Arc::as_ref))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All table definitions, sorted by name.
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values().map(Arc::as_ref)
    }

    /// All table definitions of a given kind.
    pub fn tables_of_kind(&self, kind: &TableKind) -> Vec<&TableDef> {
        self.tables
            .values()
            .filter(|t| &t.kind == kind)
            .map(Arc::as_ref)
            .collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer_def() -> TableDef {
        TableDef::new(
            "Customer",
            vec![
                ("c_id".into(), ColumnType::Int),
                ("c_uname".into(), ColumnType::Str),
                ("c_discount".into(), ColumnType::Float),
            ],
            vec!["c_id".into()],
            TableKind::Base,
        )
    }

    #[test]
    fn encode_and_decode_round_trip() {
        let def = customer_def();
        let row = Row::new()
            .with("c_id", 42)
            .with("c_uname", "alice")
            .with("c_discount", 0.05);
        let put = def.row_to_put(&row);
        assert_eq!(put.row, b"42".to_vec());
        assert_eq!(put.cell_count(), 3);
        // Simulate a stored row coming back and decode it.
        let stored = ResultRow {
            key: put.row.clone(),
            cells: put
                .cells
                .iter()
                .map(|(f, q, v)| nosql_store::Cell::new(f.clone(), q.clone(), 1, v.clone()))
                .collect(),
        };
        let decoded = def.decode_row(&stored);
        assert_eq!(decoded.get("c_id"), Some(&Value::Int(42)));
        assert_eq!(decoded.get("c_uname"), Some(&Value::str("alice")));
        assert_eq!(decoded.get("c_discount"), Some(&Value::Float(0.05)));
    }

    #[test]
    fn null_values_are_not_stored() {
        let def = customer_def();
        let row = Row::new().with("c_id", 1).with("c_uname", Value::Null);
        let put = def.row_to_put(&row);
        assert_eq!(put.cell_count(), 1);
    }

    #[test]
    fn key_cover_check_and_prefix() {
        let def = TableDef::new(
            "Works_On",
            vec![
                ("WO_EID".into(), ColumnType::Int),
                ("WO_PNo".into(), ColumnType::Int),
                ("Hours".into(), ColumnType::Int),
            ],
            vec!["WO_EID".into(), "WO_PNo".into()],
            TableKind::Base,
        );
        assert!(def.key_covered_by(&["WO_PNo".into(), "WO_EID".into()]));
        assert!(!def.key_covered_by(&["WO_EID".into()]));
        let row = Row::new().with("WO_EID", 7).with("WO_PNo", 3);
        assert_eq!(def.encode_key_prefix(&row, 1), "7");
        assert!(def.encode_row_key(&row).starts_with("7"));
    }

    #[test]
    #[should_panic(expected = "key attribute")]
    fn key_must_be_a_column() {
        let _ = TableDef::new(
            "Broken",
            vec![("a".into(), ColumnType::Int)],
            vec!["missing".into()],
            TableKind::Base,
        );
    }

    #[test]
    fn catalog_tracks_indexes() {
        let mut catalog = Catalog::new();
        catalog.add_table(customer_def());
        catalog.add_table(TableDef::new(
            "customer_by_uname",
            vec![
                ("c_uname".into(), ColumnType::Str),
                ("c_id".into(), ColumnType::Int),
            ],
            vec!["c_uname".into(), "c_id".into()],
            TableKind::Index {
                of: "Customer".into(),
            },
        ));
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.indexes_of("Customer").len(), 1);
        assert!(catalog.table_ci("CUSTOMER").is_some());
        catalog.remove_table("customer_by_uname");
        assert!(catalog.indexes_of("Customer").is_empty());
    }

    #[test]
    fn column_type_decoding() {
        assert_eq!(ColumnType::Int.decode("17"), Value::Int(17));
        assert_eq!(ColumnType::Float.decode("2.5"), Value::Float(2.5));
        assert_eq!(ColumnType::Str.decode("x"), Value::str("x"));
        assert_eq!(ColumnType::Int.decode(""), Value::Null);
        assert_eq!(ColumnType::Int.decode("garbage"), Value::Null);
    }
}
