//! The SQL skin: planner and executor over the NoSQL store.
//!
//! This crate plays the role Apache Phoenix plays in the paper (§II-D): it
//! maps a relational schema onto NoSQL tables (the *baseline schema
//! transformation*), compiles SQL statements into sequences of Get / Scan /
//! Put / Delete operations against [`nosql_store::Cluster`], and executes
//! joins client-side with hash joins over table scans — which is precisely
//! why joins are slow on the NoSQL store and why Synergy materializes them.
//!
//! Statement evaluation is an explicit four-phase pipeline — **parse →
//! bind → logical plan → physical plan** — with every planning decision
//! (predicate placement, access paths, join order, pushdowns, operator
//! parallelism) visible in the [`LogicalPlan`] that `EXPLAIN` renders.
//!
//! The main types are:
//!
//! * [`Catalog`] / [`TableDef`] — metadata describing how relations, indexes,
//!   views and lock tables are laid out as NoSQL tables (row-key composition,
//!   column types);
//! * [`Executor`] — executes parsed [`sql::Statement`]s with positional
//!   parameters and returns [`QueryResult`]s (the one-shot path: all four
//!   phases per call);
//! * [`Session`] / [`PreparedStatement`] — prepared statements over a plan
//!   cache keyed by statement text (invalidated on catalog change), plus
//!   `EXPLAIN`; [`PlanRewriter`] lets higher layers (Synergy) plug
//!   statement rewrites into the planner as visible rules;
//! * [`PhysicalPlan`] — a compiled SELECT: bound, optimized, parameter
//!   slots open, re-executable via [`Executor::execute_plan`];
//! * [`baseline`] — the paper's §II-D baseline schema and workload
//!   transformation.
//!
//! ```
//! use nosql_store::{Cluster, ClusterConfig};
//! use query::{baseline, ColumnType, Executor};
//! use relational::{company, Row, Value};
//! use sql::parse_statement;
//!
//! let schema = company::company_schema();
//! let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| {
//!     (column == "DNo").then_some(ColumnType::Int)
//! });
//! let cluster = Cluster::new(ClusterConfig::default());
//! baseline::create_tables(&cluster, &catalog).unwrap();
//!
//! let exec = Executor::new(cluster, catalog);
//! exec.insert_row("Department", &Row::new().with("DNo", 1).with("DName", "Research")).unwrap();
//!
//! let result = exec
//!     .execute(&parse_statement("SELECT * FROM Department WHERE DNo = 1").unwrap(), &[])
//!     .unwrap();
//! assert_eq!(result.rows.len(), 1);
//! assert_eq!(result.rows[0].get("DName").unwrap(), &Value::str("Research"));
//! ```

// Library code of this crate must not panic on fault paths (the lint
// crate's panic-freedom rule is the authority; clippy backs it up in CI).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod baseline;
mod bind;
mod catalog;
mod delta;
mod executor;
mod optimize;
mod physical;
mod plan;
mod result;
mod session;
mod stream;
mod writes;

pub use catalog::{Catalog, ColumnType, TableDef, TableKind, FAMILY};
pub use delta::{DeltaBuffer, DeltaPlan, DeltaSign, PendingWrite, RowDelta};
pub use executor::{
    par_decode_filtered, par_decode_rows, AccessPath, Executor, DIRTY_MARKER, DIRTY_RETRY_LIMIT,
};
pub use optimize::select_probe_access;
pub use physical::PhysicalPlan;
pub use plan::{LogicalPlan, PlanOperand, PlanPredicate, SortKey};
pub use result::{QueryError, QueryResult};
pub use session::{PlanCacheStats, PlanRewriter, PreparedStatement, Session};
