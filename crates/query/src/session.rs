//! The [`Session`]: prepared statements, the plan cache, and `EXPLAIN`.
//!
//! A session wraps an [`Executor`] and amortizes the parse → bind →
//! optimize phases of the query pipeline across executions:
//!
//! * [`Session::prepare`] compiles a statement once into a
//!   [`PreparedStatement`] whose bound, optimized [`PhysicalPlan`] is
//!   re-executed with fresh positional parameters;
//! * the **plan cache** keys compiled plans by statement text, so
//!   [`Session::execute_sql`] on a repeated statement skips planning
//!   entirely (hit/miss counters are exposed via
//!   [`Session::plan_cache_stats`]);
//! * cached plans are stamped with the catalog version they were compiled
//!   against and are invalidated transparently when the catalog changes
//!   (see [`crate::Catalog::version`]);
//! * [`Session::explain`] renders the stable plan tree for a statement,
//!   and `execute_sql` understands a leading `EXPLAIN` keyword, returning
//!   the rendering as result rows.
//!
//! Statement-level rewrites plug in through [`PlanRewriter`]: Synergy
//! installs its materialized-view substitution here, which makes the
//! rewrite a visible planner rule (a `Rewrite` node in the plan tree)
//! instead of an opaque pre-pass.
//!
//! ```
//! use nosql_store::{Cluster, ClusterConfig};
//! use query::{baseline, ColumnType, Executor, Session};
//! use relational::{company, Row, Value};
//!
//! let schema = company::company_schema();
//! let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| {
//!     (column == "DNo").then_some(ColumnType::Int)
//! });
//! let cluster = Cluster::new(ClusterConfig::default());
//! baseline::create_tables(&cluster, &catalog).unwrap();
//! let exec = Executor::new(cluster, catalog);
//! exec.insert_row("Department", &Row::new().with("DNo", 1).with("DName", "Research")).unwrap();
//!
//! let session = Session::new(exec);
//! let stmt = session.prepare("SELECT * FROM Department WHERE DNo = ?").unwrap();
//! assert_eq!(stmt.execute(&[Value::Int(1)]).unwrap().len(), 1);
//! assert_eq!(stmt.execute(&[Value::Int(2)]).unwrap().len(), 0);
//! // A second prepare of the same text is served from the plan cache.
//! session.prepare("SELECT * FROM Department WHERE DNo = ?").unwrap();
//! assert_eq!(session.plan_cache_stats().hits, 1);
//! ```

use crate::executor::Executor;
use crate::optimize::{self, RewriteNote};
use crate::physical::PhysicalPlan;
use crate::result::{QueryError, QueryResult};
use relational::{intern, Row, Value};
use sql::{SelectStatement, Statement};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Upper bound on cached plans per session.  Statement texts with inlined
/// literals each occupy one entry, so the cache is capped and flushed
/// wholesale when full (prepared-statement workloads parameterize and stay
/// far below this).
const PLAN_CACHE_MAX_ENTRIES: usize = 1_024;

/// A statement-level rewrite rule consulted before planning (e.g. Synergy's
/// materialized-view substitution).  Returning `Some` replaces the
/// statement and records the note as a `Rewrite` node in the plan tree, so
/// `EXPLAIN` shows what fired.
pub trait PlanRewriter: Send + Sync {
    /// Identifier rendered in the plan tree (e.g. `synergy-view-rewrite`).
    fn rule_name(&self) -> &str;

    /// Rewrites one SELECT, or `None` when the rule does not apply.  The
    /// returned string describes the substitution for plan renderings.
    fn rewrite_select(&self, select: &SelectStatement) -> Option<(SelectStatement, String)>;
}

/// Counters describing a session's plan-cache behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a new plan.
    pub misses: u64,
    /// Cache entries dropped because the catalog changed underneath them
    /// (each also counts as a miss).
    pub invalidations: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// What a prepared statement executes: a compiled SELECT plan, or a parsed
/// write statement (writes plan trivially — the executor resolves their
/// target per execution).
#[derive(Clone)]
enum Prepared {
    Select(Arc<PhysicalPlan>),
    Write(Arc<Statement>),
}

/// Shared mutable state of a session (clones share the cache and counters).
#[derive(Default)]
struct SessionState {
    cache: Mutex<BTreeMap<String, Prepared>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

/// A connection-scoped handle running statements through the planner with
/// a plan cache.  Cloning is cheap and clones share the cache.
#[derive(Clone)]
pub struct Session {
    executor: Executor,
    rewriter: Option<Arc<dyn PlanRewriter>>,
    state: Arc<SessionState>,
}

impl Session {
    /// Creates a session over an executor.
    pub fn new(executor: Executor) -> Session {
        Session {
            executor,
            rewriter: None,
            state: Arc::new(SessionState::default()),
        }
    }

    /// Installs a statement rewriter consulted before planning.
    ///
    /// The session gets a **fresh** plan cache: cached plans are the
    /// product of the rewriter that compiled them, so a session configured
    /// with a different rewriter must not share cache entries (or counters)
    /// with its ancestor — otherwise a clone could serve un-rewritten plans
    /// for rewritten statements or vice versa.  Clones made *after* this
    /// call share the new cache as usual.
    pub fn with_rewriter(mut self, rewriter: Arc<dyn PlanRewriter>) -> Session {
        self.rewriter = Some(rewriter);
        self.state = Arc::new(SessionState::default());
        self
    }

    /// The underlying executor.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Mutable access to the underlying executor (e.g. to swap the catalog
    /// after DDL).  Cached plans compiled against the previous catalog are
    /// invalidated lazily on their next lookup via the catalog version.
    ///
    /// Clones share the plan cache but each clone owns its executor, so
    /// swapping the catalog on one clone while another keeps the old one
    /// makes the two evict each other's plans on every lookup (the cache
    /// holds one entry per statement text, validated against the
    /// looking-up session's catalog).  Sessions whose catalogs need to
    /// diverge should not share a cache — create a fresh `Session` instead
    /// of cloning.
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.executor
    }

    /// Compiles (or fetches from the plan cache) a prepared statement for
    /// the given SQL text.
    pub fn prepare(&self, sql_text: &str) -> Result<PreparedStatement, QueryError> {
        self.prepare_keyed(sql_text, None)
    }

    /// [`Session::prepare`] for an already parsed statement (cache key is
    /// the statement's canonical text).
    pub fn prepare_statement(&self, stmt: &Statement) -> Result<PreparedStatement, QueryError> {
        self.prepare_keyed(&stmt.to_string(), Some(stmt))
    }

    /// Compiles a statement *without* consulting or populating the plan
    /// cache — the baseline against which prepared execution is measured
    /// (every phase runs, nothing is amortized).
    pub fn prepare_uncached(&self, sql_text: &str) -> Result<PreparedStatement, QueryError> {
        let stmt = parse(sql_text)?;
        let prepared = self.compile(&stmt)?;
        Ok(PreparedStatement {
            executor: self.executor.clone(),
            sql: sql_text.to_string(),
            prepared,
        })
    }

    /// Parses and executes a SQL string through the plan cache.  A leading
    /// `EXPLAIN` keyword renders the inner statement's plan tree instead,
    /// one result row per line under the column `plan`.
    pub fn execute_sql(&self, sql_text: &str, params: &[Value]) -> Result<QueryResult, QueryError> {
        if let Some(inner) = sql::strip_explain(sql_text) {
            let text = self.explain(inner)?;
            let plan_sym = intern::intern("plan");
            let rows = text
                .lines()
                .map(|line| {
                    let mut row = Row::with_capacity(1);
                    row.set_interned(plan_sym.clone(), Value::str(line));
                    row
                })
                .collect();
            return Ok(QueryResult::with_rows(rows));
        }
        self.prepare(sql_text)?.execute(params)
    }

    /// Executes an already parsed statement through the plan cache.
    pub fn execute_statement(
        &self,
        stmt: &Statement,
        params: &[Value],
    ) -> Result<QueryResult, QueryError> {
        self.prepare_statement(stmt)?.execute(params)
    }

    /// Renders the stable plan tree for a SQL string (the `EXPLAIN` text),
    /// including any rewrite rule that fired.
    pub fn explain(&self, sql_text: &str) -> Result<String, QueryError> {
        self.explain_statement(&parse(sql_text)?)
    }

    /// [`Session::explain`] for an already parsed statement.
    pub fn explain_statement(&self, stmt: &Statement) -> Result<String, QueryError> {
        match self.compile(stmt)? {
            Prepared::Select(plan) => Ok(plan.explain()),
            Prepared::Write(stmt) => self.executor.explain_statement(&stmt),
        }
    }

    /// A snapshot of the plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.state.hits.load(Ordering::Relaxed),
            misses: self.state.misses.load(Ordering::Relaxed),
            invalidations: self.state.invalidations.load(Ordering::Relaxed),
            entries: self.state.cache.lock().unwrap_or_else(PoisonError::into_inner).len(),
        }
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear_plan_cache(&self) {
        self.state.cache.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    /// Cache lookup + compile on miss.  `parsed` avoids re-parsing when the
    /// caller already holds the statement.
    fn prepare_keyed(
        &self,
        key: &str,
        parsed: Option<&Statement>,
    ) -> Result<PreparedStatement, QueryError> {
        let catalog_version = self.executor.catalog().version();
        {
            let mut cache = self.state.cache.lock().unwrap_or_else(PoisonError::into_inner);
            match cache.get(key) {
                Some(Prepared::Select(plan)) if plan.catalog_version() != catalog_version => {
                    // Stale: compiled against a previous catalog.  Drop the
                    // entry now (re-planning below may legitimately fail —
                    // e.g. the table was removed — and a failed compile must
                    // not leave the dead plan counting as cached), then fall
                    // through to re-plan.
                    cache.remove(key);
                    self.state.invalidations.fetch_add(1, Ordering::Relaxed);
                }
                Some(prepared) => {
                    self.state.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(PreparedStatement {
                        executor: self.executor.clone(),
                        sql: key.to_string(),
                        prepared: prepared.clone(),
                    });
                }
                None => {}
            }
        }
        self.state.misses.fetch_add(1, Ordering::Relaxed);
        let owned;
        let stmt = match parsed {
            Some(stmt) => stmt,
            None => {
                owned = parse(key)?;
                &owned
            }
        };
        let prepared = self.compile(stmt)?;
        {
            let mut cache = self.state.cache.lock().unwrap_or_else(PoisonError::into_inner);
            // Bound the cache: statements with inlined literals produce a
            // distinct text (and entry) per value, so a long-lived session
            // fed ad-hoc SQL would otherwise grow without limit.  When the
            // cap is reached the cache is flushed wholesale — crude but
            // O(1) amortized, and repeated statements simply re-warm.
            if cache.len() >= PLAN_CACHE_MAX_ENTRIES {
                cache.clear();
            }
            cache.insert(key.to_string(), prepared.clone());
        }
        Ok(PreparedStatement {
            executor: self.executor.clone(),
            sql: key.to_string(),
            prepared,
        })
    }

    /// Runs rewrite + bind + optimize for one statement.
    fn compile(&self, stmt: &Statement) -> Result<Prepared, QueryError> {
        let Statement::Select(select) = stmt else {
            return Ok(Prepared::Write(Arc::new(stmt.clone())));
        };
        let rewritten = self
            .rewriter
            .as_ref()
            .and_then(|rewriter| {
                rewriter.rewrite_select(select).map(|(rewritten, note)| {
                    (
                        rewritten,
                        RewriteNote {
                            rule: rewriter.rule_name().to_string(),
                            note,
                        },
                    )
                })
            });
        let plan = match &rewritten {
            Some((select, note)) => {
                optimize::bind_and_plan(&self.executor, select, Some(note.clone()))?
            }
            None => optimize::bind_and_plan(&self.executor, select, None)?,
        };
        Ok(Prepared::Select(Arc::new(plan)))
    }
}

/// A statement compiled once and executable many times with fresh
/// positional parameters.  For SELECTs this holds the bound, optimized
/// [`PhysicalPlan`]; execution binds only the parameter values.
#[derive(Clone)]
pub struct PreparedStatement {
    executor: Executor,
    sql: String,
    prepared: Prepared,
}

impl PreparedStatement {
    /// Executes with the given positional parameters.
    pub fn execute(&self, params: &[Value]) -> Result<QueryResult, QueryError> {
        match &self.prepared {
            Prepared::Select(plan) => self.executor.execute_plan(plan, params),
            Prepared::Write(stmt) => self.executor.execute(stmt, params),
        }
    }

    /// The statement text this handle was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The compiled plan, for SELECT statements.
    pub fn plan(&self) -> Option<&PhysicalPlan> {
        match &self.prepared {
            Prepared::Select(plan) => Some(plan),
            Prepared::Write(_) => None,
        }
    }

    /// Renders the plan tree (write statements render a summary line).
    pub fn explain(&self) -> Result<String, QueryError> {
        match &self.prepared {
            Prepared::Select(plan) => Ok(plan.explain()),
            Prepared::Write(stmt) => self.executor.explain_statement(stmt),
        }
    }
}

fn parse(sql_text: &str) -> Result<Statement, QueryError> {
    sql::parse_statement(sql_text).map_err(|e| QueryError::Unsupported(e.to_string()))
}
