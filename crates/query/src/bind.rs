//! Phase 2 of the query pipeline: **binding**.
//!
//! Binding resolves every name in a parsed [`SelectStatement`] against the
//! [`Catalog`] — FROM aliases to [`TableDef`]s, column references to interned
//! [`Symbol`]s — *without* touching positional parameters.  The result is a
//! [`BoundSelect`] whose conditions carry [`PlannedOperand::Param`] slots, so
//! a plan built from it can be cached and re-executed with fresh parameter
//! values: only [`PlannedCondition::bind`] runs per execution, producing the
//! fully-bound [`BoundCondition`]s the physical operators evaluate.
//!
//! The helpers in this module answer the *shape* questions the optimizer
//! asks (which conditions are single-alias filters, which are equi-joins,
//! which columns a statement needs) and the *value* questions the physical
//! phase asks (the equality-filter values that key a Get or prefix scan).

use crate::catalog::{Catalog, TableDef};
use crate::result::QueryError;
use relational::{intern, Row, Symbol, Value};
use sql::{ColumnRef, Comparison, Condition, Expr, SelectItem, SelectStatement};
use std::collections::BTreeMap;

/// The right-hand side of a condition after binding: a literal, an unbound
/// positional parameter slot, or a column (an equi-join edge).
#[derive(Debug, Clone)]
pub(crate) enum PlannedOperand {
    /// A literal value from the statement text.
    Literal(Value),
    /// A `?` placeholder bound at execution time.
    Param(usize),
    /// A column of another table reference (resolved symbol included).
    Column(ColumnRef, Symbol),
}

/// A WHERE conjunct with its column references resolved to interned symbols
/// but its parameters still unbound — the cacheable form of a condition.
#[derive(Debug, Clone)]
pub(crate) struct PlannedCondition {
    pub left: ColumnRef,
    /// `intern(left.qualified_name())`; exact-then-suffix lookup through
    /// this symbol is equivalent to the former
    /// `get(qualified).or_else(|| get(bare))` chain.
    pub left_sym: Symbol,
    pub op: Comparison,
    pub right: PlannedOperand,
}

impl PlannedCondition {
    /// Resolves one parsed condition (no parameter values needed).
    pub(crate) fn resolve(c: &Condition) -> PlannedCondition {
        let right = match &c.right {
            Expr::Column(col) => PlannedOperand::Column(col.clone(), resolve_col(col)),
            Expr::Literal(v) => PlannedOperand::Literal(v.clone()),
            Expr::Parameter(i) => PlannedOperand::Param(*i),
        };
        PlannedCondition {
            left: c.left.clone(),
            left_sym: resolve_col(&c.left),
            op: c.op,
            right,
        }
    }

    /// True when the right-hand side is a constant (literal or parameter)
    /// rather than a column — i.e. the condition filters rather than joins.
    pub(crate) fn is_filter(&self) -> bool {
        !matches!(self.right, PlannedOperand::Column(..))
    }

    /// Substitutes parameter values, producing the executable form.
    pub(crate) fn bind(&self, params: &[Value]) -> Result<BoundCondition, QueryError> {
        let right = match &self.right {
            PlannedOperand::Literal(v) => BoundOperand::Value(v.clone()),
            PlannedOperand::Param(i) => BoundOperand::Value(
                params
                    .get(*i)
                    .cloned()
                    .ok_or(QueryError::MissingParameter(*i))?,
            ),
            PlannedOperand::Column(_, sym) => BoundOperand::Column(sym.clone()),
        };
        Ok(BoundCondition {
            left_sym: self.left_sym.clone(),
            op: self.op,
            right,
        })
    }
}

/// A condition with parameters bound to concrete values — what the physical
/// operators evaluate per row.
#[derive(Debug, Clone)]
pub(crate) struct BoundCondition {
    pub left_sym: Symbol,
    pub op: Comparison,
    pub right: BoundOperand,
}

#[derive(Debug, Clone)]
pub(crate) enum BoundOperand {
    Value(Value),
    Column(Symbol),
}

/// The output of the binding phase: aliases resolved to table definitions
/// and conditions resolved to symbols (parameters still unbound).  The
/// statement itself is borrowed — planning reads it, the compiled plan
/// keeps only resolved artifacts.
#[derive(Debug)]
pub(crate) struct BoundSelect<'a> {
    /// The (possibly view-rewritten) statement being planned.
    pub select: &'a SelectStatement,
    /// One `(alias, definition)` per FROM entry, in statement order.
    /// Definitions are shared with the catalog (no symbol-table copies).
    pub aliases: Vec<(String, std::sync::Arc<TableDef>)>,
    /// One resolved condition per WHERE conjunct, in statement order.
    pub conditions: Vec<PlannedCondition>,
}

/// Runs the binding phase for a SELECT.
pub(crate) fn bind_select<'a>(
    catalog: &Catalog,
    select: &'a SelectStatement,
) -> Result<BoundSelect<'a>, QueryError> {
    let mut aliases: Vec<(String, std::sync::Arc<TableDef>)> = Vec::new();
    for table_ref in &select.from {
        let def = catalog
            .table_shared_ci(&table_ref.table)
            .ok_or_else(|| QueryError::UnknownTable(table_ref.table.clone()))?;
        aliases.push((table_ref.alias.clone(), def));
    }
    let conditions = select.conditions.iter().map(PlannedCondition::resolve).collect();
    Ok(BoundSelect {
        select,
        aliases,
        conditions,
    })
}

/// Resolves a column reference for per-row lookup: the qualified name is
/// interned once, and [`Row::get_interned`](relational::Row::get_interned)'s
/// suffix fallback covers the bare-name alternative (both names share the
/// same bare suffix).
pub(crate) fn resolve_col(col: &ColumnRef) -> Symbol {
    match &col.qualifier {
        Some(q) => intern::intern(&format!("{q}.{}", col.column)),
        None => intern::intern(&col.column),
    }
}

/// True if the condition only involves the given alias (its left column is a
/// column of `def` referenced through `alias` or unqualified-and-unambiguous)
/// and compares against a constant.
pub(crate) fn condition_is_single_alias(
    c: &PlannedCondition,
    alias: &str,
    def: &TableDef,
    from: &[sql::TableRef],
) -> bool {
    c.is_filter() && column_belongs_to_alias(&c.left, alias, def, from)
}

pub(crate) fn column_belongs_to_alias(
    col: &ColumnRef,
    alias: &str,
    def: &TableDef,
    from: &[sql::TableRef],
) -> bool {
    match &col.qualifier {
        Some(q) => q == alias && def.column_type(&col.column).is_some(),
        // Unqualified: belongs to this alias when the column exists here and
        // this is the only FROM entry that declares it (TPC-W queries only
        // use unqualified names when they are unambiguous).
        None => def.column_type(&col.column).is_some() && from.len() == 1,
    }
}

/// The columns carrying single-alias *equality* filters for one alias, in
/// sorted order — the shape input to access-path selection (values are not
/// needed to choose the path).  `cond_idxs` are the alias's single-alias
/// condition indices from the optimizer's classification pass.
pub(crate) fn eq_filter_columns(
    conditions: &[PlannedCondition],
    cond_idxs: &[usize],
) -> Vec<String> {
    let mut out = BTreeMap::new();
    for &i in cond_idxs {
        let c = &conditions[i];
        if c.op == Comparison::Eq {
            out.insert(c.left.column.clone(), ());
        }
    }
    out.into_keys().collect()
}

/// The single-alias equality filters of one alias as column → bound value
/// (what keys a Get / prefix scan).  Later conditions on the same column
/// overwrite earlier ones, exactly as the pre-planner executor behaved.
pub(crate) fn eq_filter_values(
    conditions: &[PlannedCondition],
    bound: &[BoundCondition],
    cond_idxs: &[usize],
) -> BTreeMap<String, Value> {
    let mut out = BTreeMap::new();
    for &i in cond_idxs {
        if conditions[i].op == Comparison::Eq {
            if let BoundOperand::Value(v) = &bound[i].right {
                out.insert(conditions[i].left.column.clone(), v.clone());
            }
        }
    }
    out
}

/// True when the alias's single-alias conditions bound `column` from both
/// sides: at least one `>` / `>=` and one `<` / `<=` filter against a
/// constant (literal or parameter).  This is the *shape* question behind
/// [`crate::AccessPath::KeyRangeScan`] — parameter values are not needed to
/// choose the path, exactly as with equality filters.
pub(crate) fn range_bounded_column(
    conditions: &[PlannedCondition],
    cond_idxs: &[usize],
    column: &str,
) -> bool {
    let mut lower = false;
    let mut upper = false;
    for &i in cond_idxs {
        let c = &conditions[i];
        if !c.is_filter() || c.left.column != column {
            continue;
        }
        match c.op {
            Comparison::Gt | Comparison::GtEq => lower = true,
            Comparison::Lt | Comparison::LtEq => upper = true,
            _ => {}
        }
    }
    lower && upper
}

/// The tightest `[lo, hi]` *inclusive-value* envelope the alias's bound
/// range filters put on `column` — the value-side companion of
/// [`range_bounded_column`], evaluated per execution once parameters are
/// substituted.  Strict bounds are kept as their value (the envelope is a
/// superset; the stream filters re-check exactness), and incomparable
/// values keep the first bound seen, which stays conservative for the same
/// reason.  Returns `None` unless both sides are present.
pub(crate) fn range_filter_bounds(
    conditions: &[PlannedCondition],
    bound: &[BoundCondition],
    cond_idxs: &[usize],
    column: &str,
) -> Option<(Value, Value)> {
    let mut lo: Option<Value> = None;
    let mut hi: Option<Value> = None;
    for &i in cond_idxs {
        let c = &conditions[i];
        if c.left.column != column {
            continue;
        }
        let BoundOperand::Value(v) = &bound[i].right else {
            continue;
        };
        match c.op {
            Comparison::Gt | Comparison::GtEq => match &lo {
                Some(cur) if value_lt(v, cur) => {}
                _ => lo = Some(v.clone()),
            },
            Comparison::Lt | Comparison::LtEq => match &hi {
                Some(cur) if value_lt(cur, v) => {}
                _ => hi = Some(v.clone()),
            },
            _ => {}
        }
    }
    Some((lo?, hi?))
}

/// Strict `a < b` for bound comparison, false when incomparable.
fn value_lt(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(a), Value::Int(b)) => a < b,
        (Value::Float(a), Value::Float(b)) => a < b,
        (Value::Str(a), Value::Str(b)) => a < b,
        _ => false,
    }
}

/// Columns of `alias` that the query needs (for covered-index decisions and
/// projection pushdown); `None` means "all of them" (wildcard).
pub(crate) fn needed_columns(
    select: &SelectStatement,
    alias: &str,
    def: &TableDef,
) -> Option<Vec<String>> {
    let mut needed: Vec<String> = Vec::new();
    let mut add = |col: &ColumnRef| {
        let belongs = match &col.qualifier {
            Some(q) => q == alias,
            None => def.column_type(&col.column).is_some(),
        };
        if belongs && !needed.contains(&col.column) {
            needed.push(col.column.clone());
        }
    };
    for item in &select.items {
        match item {
            SelectItem::Wildcard => return None,
            SelectItem::Column { column, .. } => add(column),
            SelectItem::Aggregate { argument, .. } => {
                if let Some(a) = argument {
                    add(a);
                }
            }
        }
    }
    for c in &select.conditions {
        add(&c.left);
        if let Expr::Column(col) = &c.right {
            add(col);
        }
    }
    for c in &select.group_by {
        add(c);
    }
    for k in &select.order_by {
        add(&k.column);
    }
    Some(needed)
}

/// Builds the per-column decode mask for `needed` columns (`None` = decode
/// everything, also used when every column is needed anyway).
pub(crate) fn column_mask(def: &TableDef, needed: &Option<Vec<String>>) -> Option<Vec<bool>> {
    let needed = needed.as_ref()?;
    let mut mask = vec![false; def.columns.len()];
    let mut all = true;
    for (i, (name, _)) in def.columns.iter().enumerate() {
        let keep = needed.iter().any(|n| n == name);
        mask[i] = keep;
        all &= keep;
    }
    if all {
        None
    } else {
        Some(mask)
    }
}

/// Equi-join conditions connecting `alias` to any of `joined`, with their
/// index in the planned-condition list.
pub(crate) fn join_conditions_between<'a>(
    conditions: &'a [PlannedCondition],
    alias: &'a str,
    joined: &'a [String],
) -> impl Iterator<Item = (usize, &'a PlannedCondition)> {
    conditions.iter().enumerate().filter(move |(_, c)| {
        if c.op != Comparison::Eq {
            return false;
        }
        let PlannedOperand::Column(right, _) = &c.right else {
            return false;
        };
        let lq = c.left.qualifier.as_deref();
        let rq = right.qualifier.as_deref();
        match (lq, rq) {
            (Some(l), Some(r)) => {
                (l == alias && joined.iter().any(|j| j == r))
                    || (r == alias && joined.iter().any(|j| j == l))
            }
            _ => false,
        }
    })
}

/// The side of a join condition that belongs to `alias`.
pub(crate) fn join_column_for_alias<'a>(c: &'a PlannedCondition, alias: &str) -> &'a ColumnRef {
    let PlannedOperand::Column(right, _) = &c.right else {
        return &c.left;
    };
    if right.qualifier.as_deref() == Some(alias) {
        right
    } else {
        &c.left
    }
}

/// The side of a join condition that does *not* belong to `alias`.
pub(crate) fn join_column_other_side<'a>(c: &'a PlannedCondition, alias: &str) -> &'a ColumnRef {
    let PlannedOperand::Column(right, _) = &c.right else {
        return &c.left;
    };
    if right.qualifier.as_deref() == Some(alias) {
        &c.left
    } else {
        right
    }
}

/// Binds a scalar expression (used by the write paths, which have no plan).
pub(crate) fn bind_expr(expr: &Expr, params: &[Value]) -> Result<Value, QueryError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Parameter(i) => params
            .get(*i)
            .cloned()
            .ok_or(QueryError::MissingParameter(*i)),
        Expr::Column(c) => Err(QueryError::Unsupported(format!(
            "column reference {c} cannot be used as a scalar value here"
        ))),
    }
}

/// Builds a row carrying the equality-filter values (for key encoding).
pub(crate) fn eq_filter_row(eq_filters: &BTreeMap<String, Value>) -> Row {
    Row::from_pairs(eq_filters.iter().map(|(k, v)| (k.as_str(), v.clone())))
}
