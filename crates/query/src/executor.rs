//! The [`Executor`]: configuration and one-shot entry points of the query
//! pipeline.
//!
//! Statement evaluation is an explicit four-phase pipeline:
//!
//! 1. **parse** — SQL text → [`sql::Statement`] ([`sql::parse_statement`]);
//! 2. **bind** — names resolved against the [`Catalog`] to interned
//!    [`Symbol`](relational::Symbol)s, parameters left as slots
//!    (`crate::bind`);
//! 3. **logical plan / optimize** — rule passes decide predicate placement,
//!    access paths, join order, pushdowns and operator parallelism,
//!    producing a [`LogicalPlan`](crate::LogicalPlan) (`crate::optimize`);
//! 4. **physical plan** — the compiled, cacheable [`PhysicalPlan`] executes
//!    over the pull-based [`RowStream`](crate::stream) operators
//!    (`crate::physical`).
//!
//! [`Executor::execute_sql`] is the thin one-shot wrapper that runs all four
//! phases per call.  [`crate::Session`] amortizes phases 1–3 across
//! executions through its plan cache and prepared statements.
//!
//! The executor mirrors how Phoenix evaluates SQL over HBase: single-table
//! predicates become Gets or range Scans (using covered indexes when one
//! matches), while joins are executed client-side by scanning each
//! participating table and hash-joining the streams.  Every operation's cost
//! is charged through the cluster, and intermediate join rows additionally
//! pay the shuffle/probe costs of [`simclock::CostModel`] — the data-transfer
//! latency the paper identifies as the reason joins are slow in a NoSQL
//! store (§III).

use crate::catalog::{Catalog, TableDef, FAMILY};
use crate::optimize;
use crate::physical::PhysicalPlan;
use crate::result::{QueryError, QueryResult};
use nosql_store::ops::{Get, Scan};
use nosql_store::Cluster;
use relational::{Row, Value};
use sql::{SelectStatement, Statement};
use std::sync::Arc;

/// Reserved column marking a row as dirty during a Synergy view update.
pub const DIRTY_MARKER: &str = "_dirty";

/// Default maximum number of times a scan is restarted after observing dirty
/// rows.  Restarts are cheap (the marked window is a handful of store
/// operations), so the limit is generous; it exists only to turn a livelock
/// into an error.  Override per executor with
/// [`Executor::with_dirty_retry_limit`] — fault-injection harnesses use a
/// small limit so a permanently dirty view (a crashed transaction that never
/// unmarked) degrades to the baseline plan quickly instead of spinning.
pub const DIRTY_RETRY_LIMIT: usize = 4_096;

/// How a single table reference will be accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Point Get by full primary key.
    KeyGet,
    /// Range scan on a prefix of the row key.
    KeyPrefixScan,
    /// Prefix scan of a covered index table.
    IndexScan {
        /// Name of the index table used.
        index: String,
    },
    /// Bounded scan on the leading key attribute: the alias carries both a
    /// lower (`>` / `>=`) and an upper (`<` / `<=`) filter on `key[0]`, so
    /// the store walk can be clamped to `[lo, hi]` when the encoded bounds
    /// are order-safe (see `physical::range_scan_bounds`); otherwise the
    /// operator degrades to a full walk and the ordinary single-alias
    /// stream filters keep the result exact.  This is the access path of
    /// Synergy upqueries, whose defining plans are parameterized on the
    /// missing view-key range.
    KeyRangeScan,
    /// Full table scan.
    FullScan,
}

/// True if a stored row carries the dirty marker (see [`DIRTY_MARKER`]).
pub(crate) fn stored_row_is_dirty(stored: &nosql_store::ResultRow) -> bool {
    stored.value(FAMILY, DIRTY_MARKER).is_some_and(|v| v == b"1")
}

/// Executes SQL statements against a [`Cluster`] using a [`Catalog`].
#[derive(Clone)]
pub struct Executor {
    cluster: Cluster,
    catalog: Arc<Catalog>,
    dirty_protection: bool,
    dirty_retry_limit: usize,
    snapshot: Option<nosql_store::Timestamp>,
    /// Degree of parallelism for full scans, hash joins and top-k (1 =
    /// fully serial; the serial paths are kept verbatim so single-threaded
    /// execution is byte-identical to the pre-parallel pipeline).
    threads: usize,
}

impl Executor {
    /// Creates an executor over `cluster` with the given catalog.
    pub fn new(cluster: Cluster, catalog: Catalog) -> Self {
        Executor {
            cluster,
            catalog: Arc::new(catalog),
            dirty_protection: false,
            dirty_retry_limit: DIRTY_RETRY_LIMIT,
            snapshot: None,
            threads: 1,
        }
    }

    /// Enables region-parallel execution with up to `threads` workers: full
    /// table scans run as [`Cluster::par_scan_stream`] fan-outs with
    /// parallel decode, equi-joins hash-partition their build side and probe
    /// per-partition, and ORDER BY + LIMIT runs per-worker bounded heaps
    /// merged at the barrier.  `threads <= 1` keeps the serial pipeline
    /// byte-for-byte.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured degree of parallelism (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables dirty-row detection: scans that observe a row whose
    /// [`DIRTY_MARKER`] column equals `"1"` are restarted, implementing the
    /// read-committed protocol of paper §VIII-C.
    pub fn with_dirty_read_protection(mut self) -> Self {
        self.dirty_protection = true;
        self
    }

    /// Overrides the dirty-scan restart budget (default
    /// [`DIRTY_RETRY_LIMIT`]).  When a statement exhausts it, execution
    /// fails with [`QueryError::DirtyReadRetriesExhausted`]; higher layers
    /// (Synergy's read path) catch that and fall back to the baseline plan.
    pub fn with_dirty_retry_limit(mut self, limit: usize) -> Self {
        self.dirty_retry_limit = limit.max(1);
        self
    }

    /// The configured dirty-scan restart budget.
    pub fn dirty_retry_limit(&self) -> usize {
        self.dirty_retry_limit
    }

    /// Restricts reads to cell versions written at or before `snapshot`.
    /// Used by the MVCC layer to give statements a consistent snapshot.
    pub fn with_snapshot_bound(mut self, snapshot: nosql_store::Timestamp) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Replaces the catalog (e.g. after DDL).  Plans compiled against the
    /// previous catalog keep executing against the definitions they
    /// captured; [`crate::Session`] plan caches detect the version change
    /// and re-plan on the next lookup.
    pub fn set_catalog(&mut self, catalog: Catalog) {
        self.catalog = Arc::new(catalog);
    }

    /// Whether dirty-read protection is enabled.
    pub(crate) fn dirty_protection(&self) -> bool {
        self.dirty_protection
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses and executes a SQL string: the one-shot path running all four
    /// pipeline phases per call.  Use [`crate::Session`] to amortize
    /// parse/bind/plan across executions.
    pub fn execute_sql(&self, sql_text: &str, params: &[Value]) -> Result<QueryResult, QueryError> {
        let stmt = sql::parse_statement(sql_text)
            .map_err(|e| QueryError::Unsupported(e.to_string()))?;
        self.execute(&stmt, params)
    }

    /// Executes a parsed statement with positional parameters.
    pub fn execute(&self, stmt: &Statement, params: &[Value]) -> Result<QueryResult, QueryError> {
        match stmt {
            Statement::Select(select) => {
                let plan = self.plan_select(select)?;
                self.execute_plan(&plan, params)
            }
            Statement::Insert(insert) => self.execute_insert(insert, params),
            Statement::Update(update) => self.execute_update(update, params),
            Statement::Delete(delete) => self.execute_delete(delete, params),
        }
    }

    /// Compiles one SELECT into a reusable [`PhysicalPlan`] at this
    /// executor's configuration (bind + optimize; no execution, no
    /// simulated cost).
    pub fn plan_select(&self, select: &SelectStatement) -> Result<PhysicalPlan, QueryError> {
        optimize::bind_and_plan(self, select, None)
    }

    /// Renders the stable plan tree for a statement (the `EXPLAIN` text).
    /// Write statements render as a single summary line.
    pub fn explain_statement(&self, stmt: &Statement) -> Result<String, QueryError> {
        match stmt {
            Statement::Select(select) => Ok(self.plan_select(select)?.explain()),
            Statement::Insert(i) => Ok(format!("Insert {}\n", i.table)),
            Statement::Update(u) => Ok(format!("Update {}\n", u.table)),
            Statement::Delete(d) => Ok(format!("Delete {}\n", d.table)),
        }
    }

    /// Parses a SQL string and renders its plan tree.
    pub fn explain_sql(&self, sql_text: &str) -> Result<String, QueryError> {
        let stmt = sql::parse_statement(sql_text)
            .map_err(|e| QueryError::Unsupported(e.to_string()))?;
        self.explain_statement(&stmt)
    }

    /// Pushes the statement's column projection into the store scan: only
    /// the masked-in columns, the key columns (never null, so a projected
    /// row is never empty at the store) and — under dirty protection — the
    /// dirty marker are streamed back.  Empty = no projection (all columns).
    pub(crate) fn scan_projection(
        &self,
        def: &TableDef,
        mask: Option<&[bool]>,
    ) -> Vec<(String, String)> {
        let Some(mask) = mask else {
            return Vec::new();
        };
        let mut columns: Vec<(String, String)> = Vec::new();
        for (i, (name, _)) in def.columns.iter().enumerate() {
            if mask[i] || def.key.iter().any(|k| k == name) {
                columns.push((FAMILY.to_string(), name.clone()));
            }
        }
        if self.dirty_protection {
            columns.push((FAMILY.to_string(), DIRTY_MARKER.to_string()));
        }
        columns
    }

    /// Builds a Get honouring the executor's snapshot bound, if any.
    pub(crate) fn bounded_get(&self, key: String) -> Get {
        match self.snapshot {
            Some(ts) => Get::new(key).up_to(ts),
            None => Get::new(key),
        }
    }

    /// Applies the executor's snapshot bound to a scan, if any.  Public so
    /// higher layers (e.g. Synergy view maintenance) can issue store scans
    /// that cannot observe rows newer than the statement's snapshot.
    pub fn bounded_scan(&self, scan: Scan) -> Scan {
        match self.snapshot {
            Some(ts) => scan.up_to(ts),
            None => scan,
        }
    }

    pub(crate) fn is_dirty(&self, stored: &nosql_store::ResultRow) -> bool {
        self.dirty_protection && stored_row_is_dirty(stored)
    }
}

/// Decodes a whole cursor through `def`, fanning the decode out over
/// `threads` pool workers in order-preserving batches (one store page per
/// worker per batch, so at most one raw batch is resident alongside the
/// decoded output).  `threads <= 1` stream-decodes row by row.  Shared by
/// the batch consumers outside the executor pipeline — Synergy's view
/// materialization and maintenance scans.
pub fn par_decode_rows(
    def: &TableDef,
    cursor: impl Iterator<Item = nosql_store::ResultRow>,
    threads: usize,
) -> Vec<Row> {
    par_decode_filtered(def, cursor, threads, |_| true)
}

/// [`par_decode_rows`] with a row predicate fused into the decode, so
/// selective consumers (e.g. maintenance's full-view fallback keeping a
/// handful of rows) hold only the matches plus one in-flight batch — never
/// the whole decoded table — at every thread count.
pub fn par_decode_filtered(
    def: &TableDef,
    cursor: impl Iterator<Item = nosql_store::ResultRow>,
    threads: usize,
    keep: impl Fn(&Row) -> bool + Sync,
) -> Vec<Row> {
    if threads <= 1 {
        return cursor
            .map(|stored| def.decode_row(&stored))
            .filter(|row| keep(row))
            .collect();
    }
    let keep = &keep;
    let mut cursor = cursor;
    let mut out = Vec::new();
    loop {
        let batch: Vec<nosql_store::ResultRow> = cursor
            .by_ref()
            .take(threads * nosql_store::SCAN_PAGE_ROWS)
            .collect();
        if batch.is_empty() {
            return out;
        }
        out.extend(
            pool::map(batch, threads, |stored| {
                let row = def.decode_row(&stored);
                keep(&row).then_some(row)
            })
            .into_iter()
            .flatten(),
        );
    }
}
