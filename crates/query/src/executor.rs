//! Statement execution: access-path selection, client-side hash joins,
//! aggregation, ordering and projection.
//!
//! The executor mirrors how Phoenix evaluates SQL over HBase: single-table
//! predicates become Gets or range Scans (using covered indexes when one
//! matches), while joins are executed client-side by scanning each
//! participating table and hash-joining the streams.  Every operation's cost
//! is charged through the cluster, and intermediate join rows additionally
//! pay the shuffle/probe costs of [`simclock::CostModel`] — the data-transfer
//! latency the paper identifies as the reason joins are slow in a NoSQL
//! store (§III).
//!
//! # Streaming execution
//!
//! A SELECT is evaluated as a **pull-based operator tree** over lazy
//! [`RowStream`]s: store scans are [`nosql_store::ScanCursor`]s that page
//! through regions on demand, decode (with projection pushed into both the
//! store scan and the decoder), filtering, and hash-join probing all wrap
//! the upstream iterator, and only the operators that fundamentally need
//! state — hash-join build sides, GROUP BY, ORDER BY — materialize rows.
//! ORDER BY + LIMIT uses a bounded top-k heap, and a `LIMIT k` statement
//! stops pulling its source after `k` output rows, so it decodes
//! O(k + build-side) rows instead of the whole database.  Row limits with
//! no downstream filtering are pushed all the way into the store scan.
//!
//! # Allocation discipline
//!
//! The read path resolves every column reference to an interned
//! [`Symbol`] **once per statement**: per-alias qualified-name tables are
//! precomputed before rows are fetched, join keys and residual predicates
//! compare pre-resolved symbols, and the hash join emits rows whose left and
//! right halves are shared `Arc` slices ([`Row::join_concat`]) instead of
//! deep clones.  Projection is pushed into the decoder so unneeded columns
//! are never materialized.

use crate::catalog::{Catalog, TableDef, FAMILY};
use crate::result::{QueryError, QueryResult};
use crate::stream::{collect_stream, par_top_k, top_k, Residency, RowStream};
use nosql_store::ops::{Get, Scan};
use nosql_store::Cluster;
use relational::{encode_key, intern, Row, Symbol, Value, KEY_DELIMITER};
use sql::{
    AggregateFunction, ColumnRef, Comparison, Condition, Expr, SelectItem, SelectStatement,
    Statement,
};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Reserved column marking a row as dirty during a Synergy view update.
pub const DIRTY_MARKER: &str = "_dirty";

/// Maximum number of times a scan is restarted after observing dirty rows.
/// Restarts are cheap (the marked window is a handful of store operations),
/// so the limit is generous; it exists only to turn a livelock into an error.
const DIRTY_RETRY_LIMIT: usize = 4_096;

/// How a single table reference will be accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Point Get by full primary key.
    KeyGet,
    /// Range scan on a prefix of the row key.
    KeyPrefixScan,
    /// Prefix scan of a covered index table.
    IndexScan {
        /// Name of the index table used.
        index: String,
    },
    /// Full table scan.
    FullScan,
}

/// Executes SQL statements against a [`Cluster`] using a [`Catalog`].
#[derive(Clone)]
pub struct Executor {
    cluster: Cluster,
    catalog: Arc<Catalog>,
    dirty_protection: bool,
    snapshot: Option<nosql_store::Timestamp>,
    /// Degree of parallelism for full scans, hash joins and top-k (1 =
    /// fully serial; the serial paths are kept verbatim so single-threaded
    /// execution is byte-identical to the pre-parallel pipeline).
    threads: usize,
}

/// A WHERE conjunct with parameters bound to concrete values and its column
/// references resolved to interned symbols (once per statement, not per row).
#[derive(Debug, Clone)]
pub(crate) struct BoundCondition {
    pub left: ColumnRef,
    /// `intern(left.qualified_name())`; exact-then-suffix lookup through
    /// this symbol is equivalent to the former
    /// `get(qualified).or_else(|| get(bare))` chain.
    pub left_sym: Symbol,
    pub op: Comparison,
    pub right: BoundOperand,
}

#[derive(Debug, Clone)]
pub(crate) enum BoundOperand {
    Value(Value),
    Column(ColumnRef, Symbol),
}

/// A hash-join key; the single-condition case (all of TPC-W's joins)
/// carries the value inline instead of allocating a per-row vector.  Keys
/// own their values so the build map can outlive the probe stream's
/// borrows; TPC-W join keys are integers, so the clone is a copy.
#[derive(Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    One(Value),
    Many(Vec<Value>),
}

impl JoinKey {
    /// Extracts the join key of `row`; `None` if any key column is absent.
    fn of(row: &Row, syms: &[Symbol]) -> Option<JoinKey> {
        match syms {
            [sym] => row.get_interned(sym).cloned().map(JoinKey::One),
            _ => syms
                .iter()
                .map(|sym| row.get_interned(sym).cloned())
                .collect::<Option<Vec<Value>>>()
                .map(JoinKey::Many),
        }
    }
}

/// Everything needed to decode one alias's stored rows into relational
/// rows, resolved once per statement and moved into the scan stream's
/// closure: the projection mask and (for multi-table statements) the
/// alias-qualified output symbols.
struct DecodePlan<'a> {
    def: &'a TableDef,
    qual_syms: Option<Vec<Symbol>>,
    mask: Option<Vec<bool>>,
}

impl DecodePlan<'_> {
    fn decode(&self, stored: &nosql_store::ResultRow) -> Row {
        match &self.qual_syms {
            Some(syms) => self.def.decode_row_qualified(stored, syms, self.mask.as_deref()),
            None => match &self.mask {
                Some(mask) => self.def.decode_row_projected(stored, mask),
                None => self.def.decode_row(stored),
            },
        }
    }
}

/// A full-scan source running at `threads`-way parallelism: pulls batches
/// of stored rows from a region-parallel cursor and decodes each batch on
/// the pool, preserving row order.  Dirty markers surface as
/// [`QueryError::DirtyRestart`] exactly as in the serial stream (the whole
/// statement restarts, so decoding a batch past the marker is only wasted
/// work, never wrong results).
struct ParDecodeStream<'a> {
    cursor: nosql_store::ParScanCursor,
    plan: DecodePlan<'a>,
    dirty_protection: bool,
    threads: usize,
    batch: std::vec::IntoIter<Result<Row, QueryError>>,
}

impl Iterator for ParDecodeStream<'_> {
    type Item = Result<Row, QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.batch.next() {
                return Some(row);
            }
            // One store page per worker per batch keeps decode parallelism
            // aligned with the scan fan-out without unbounded buffering.
            let batch_rows = self.threads * nosql_store::SCAN_PAGE_ROWS;
            let stored: Vec<nosql_store::ResultRow> =
                self.cursor.by_ref().take(batch_rows).collect();
            if stored.is_empty() {
                return None;
            }
            let plan = &self.plan;
            let dirty_protection = self.dirty_protection;
            self.batch = pool::map(stored, self.threads, |row| {
                if dirty_protection && stored_row_is_dirty(&row) {
                    return Err(QueryError::DirtyRestart);
                }
                Ok(plan.decode(&row))
            })
            .into_iter();
        }
    }
}

/// True if a stored row carries the dirty marker (see [`DIRTY_MARKER`]).
fn stored_row_is_dirty(stored: &nosql_store::ResultRow) -> bool {
    stored.value(FAMILY, DIRTY_MARKER).is_some_and(|v| v == b"1")
}

/// Decodes a whole cursor through `def`, fanning the decode out over
/// `threads` pool workers in order-preserving batches (one store page per
/// worker per batch, so at most one raw batch is resident alongside the
/// decoded output).  `threads <= 1` stream-decodes row by row.  Shared by
/// the batch consumers outside the executor pipeline — Synergy's view
/// materialization and maintenance scans.
pub fn par_decode_rows(
    def: &TableDef,
    cursor: impl Iterator<Item = nosql_store::ResultRow>,
    threads: usize,
) -> Vec<Row> {
    par_decode_filtered(def, cursor, threads, |_| true)
}

/// [`par_decode_rows`] with a row predicate fused into the decode, so
/// selective consumers (e.g. maintenance's full-view fallback keeping a
/// handful of rows) hold only the matches plus one in-flight batch — never
/// the whole decoded table — at every thread count.
pub fn par_decode_filtered(
    def: &TableDef,
    cursor: impl Iterator<Item = nosql_store::ResultRow>,
    threads: usize,
    keep: impl Fn(&Row) -> bool + Sync,
) -> Vec<Row> {
    if threads <= 1 {
        return cursor
            .map(|stored| def.decode_row(&stored))
            .filter(|row| keep(row))
            .collect();
    }
    let keep = &keep;
    let mut cursor = cursor;
    let mut out = Vec::new();
    loop {
        let batch: Vec<nosql_store::ResultRow> = cursor
            .by_ref()
            .take(threads * nosql_store::SCAN_PAGE_ROWS)
            .collect();
        if batch.is_empty() {
            return out;
        }
        out.extend(
            pool::map(batch, threads, |stored| {
                let row = def.decode_row(&stored);
                keep(&row).then_some(row)
            })
            .into_iter()
            .flatten(),
        );
    }
}

/// Resolves a column reference for per-row lookup: the qualified name is
/// interned once, and [`Row::get_interned`]'s suffix fallback covers the
/// bare-name alternative (both names share the same bare suffix).
fn resolve_col(col: &ColumnRef) -> Symbol {
    match &col.qualifier {
        Some(q) => intern::intern(&format!("{q}.{}", col.column)),
        None => intern::intern(&col.column),
    }
}

impl Executor {
    /// Creates an executor over `cluster` with the given catalog.
    pub fn new(cluster: Cluster, catalog: Catalog) -> Self {
        Executor {
            cluster,
            catalog: Arc::new(catalog),
            dirty_protection: false,
            snapshot: None,
            threads: 1,
        }
    }

    /// Enables region-parallel execution with up to `threads` workers: full
    /// table scans run as [`Cluster::par_scan_stream`] fan-outs with
    /// parallel decode, equi-joins hash-partition their build side and probe
    /// per-partition, and ORDER BY + LIMIT runs per-worker bounded heaps
    /// merged at the barrier.  `threads <= 1` keeps the serial pipeline
    /// byte-for-byte.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured degree of parallelism (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables dirty-row detection: scans that observe a row whose
    /// [`DIRTY_MARKER`] column equals `"1"` are restarted, implementing the
    /// read-committed protocol of paper §VIII-C.
    pub fn with_dirty_read_protection(mut self) -> Self {
        self.dirty_protection = true;
        self
    }

    /// Restricts reads to cell versions written at or before `snapshot`.
    /// Used by the MVCC layer to give statements a consistent snapshot.
    pub fn with_snapshot_bound(mut self, snapshot: nosql_store::Timestamp) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses and executes a SQL string.
    pub fn execute_sql(&self, sql_text: &str, params: &[Value]) -> Result<QueryResult, QueryError> {
        let stmt = sql::parse_statement(sql_text)
            .map_err(|e| QueryError::Unsupported(e.to_string()))?;
        self.execute(&stmt, params)
    }

    /// Executes a parsed statement with positional parameters.
    pub fn execute(&self, stmt: &Statement, params: &[Value]) -> Result<QueryResult, QueryError> {
        match stmt {
            Statement::Select(select) => self.execute_select(select, params),
            Statement::Insert(insert) => self.execute_insert(insert, params),
            Statement::Update(update) => self.execute_update(update, params),
            Statement::Delete(delete) => self.execute_delete(delete, params),
        }
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    /// Retry shell around [`Executor::stream_select`]: a streamed scan that
    /// observes a dirty marker aborts the whole pipeline with
    /// [`QueryError::DirtyRestart`] (nothing has been emitted yet — results
    /// only leave the pipeline at the end), and the statement restarts,
    /// implementing the read-committed protocol of paper §VIII-C.
    fn execute_select(
        &self,
        select: &SelectStatement,
        params: &[Value],
    ) -> Result<QueryResult, QueryError> {
        let mut attempts = 0;
        loop {
            match self.stream_select(select, params) {
                Err(QueryError::DirtyRestart) => {
                    attempts += 1;
                    if attempts > DIRTY_RETRY_LIMIT {
                        return Err(QueryError::DirtyReadRetriesExhausted);
                    }
                    // Give the in-flight update a chance to finish.
                    std::thread::yield_now();
                }
                other => return other,
            }
        }
    }

    /// Plans and runs one SELECT as a pull-based operator pipeline:
    /// scan → projected decode → filter → hash joins (build side
    /// materialized, probe side streamed) → residual filter → aggregate /
    /// top-k / take → project.
    fn stream_select(
        &self,
        select: &SelectStatement,
        params: &[Value],
    ) -> Result<QueryResult, QueryError> {
        let conditions = bind_conditions(&select.conditions, params)?;

        // Resolve each FROM alias to its table definition.
        let mut aliases: Vec<(String, TableDef)> = Vec::new();
        for table_ref in &select.from {
            let def = self
                .catalog
                .table_ci(&table_ref.table)
                .ok_or_else(|| QueryError::UnknownTable(table_ref.table.clone()))?;
            aliases.push((table_ref.alias.clone(), def.clone()));
        }

        // Track which conditions are fully enforced inside the pipeline:
        // every single-alias filter is applied on its alias's stream, and
        // every equi-join condition is enforced exactly by the hash join
        // that consumes it.  Whatever remains (cross-alias `<>`, range
        // predicates over joined columns, ...) is evaluated per joined row.
        let mut consumed = vec![false; conditions.len()];
        for (alias, def) in &aliases {
            for (i, c) in conditions.iter().enumerate() {
                if condition_is_single_alias(c, alias, def, &select.from) {
                    consumed[i] = true;
                }
            }
        }

        // Greedy join order, planned up front (before any stream exists):
        // start with the alias that has the most selective access path, then
        // repeatedly add an alias connected by a join condition.
        let mut remaining: Vec<usize> = (0..aliases.len()).collect();
        let start = self.pick_start_alias(&aliases, &conditions, select);
        remaining.retain(|&i| i != start);
        let mut joined_aliases = vec![aliases[start].0.clone()];
        let mut join_steps: Vec<(usize, Vec<usize>)> = Vec::new();
        while !remaining.is_empty() {
            // Find a remaining alias connected to what we have joined so far.
            let next_pos = remaining
                .iter()
                .position(|&i| {
                    join_conditions_between(&conditions, &aliases[i].0, &joined_aliases)
                        .next()
                        .is_some()
                })
                .unwrap_or(0);
            let idx = remaining.remove(next_pos);
            let cond_idxs: Vec<usize> =
                join_conditions_between(&conditions, &aliases[idx].0, &joined_aliases)
                    .map(|(i, _)| i)
                    .collect();
            for &i in &cond_idxs {
                consumed[i] = true;
            }
            joined_aliases.push(aliases[idx].0.clone());
            join_steps.push((idx, cond_idxs));
        }

        // Residual conditions: anything not consumed above.
        let residual: Vec<&BoundCondition> = conditions
            .iter()
            .enumerate()
            .filter(|(i, _)| !consumed[*i])
            .map(|(_, c)| c)
            .collect();

        let meter = Residency::default();
        let single_table = aliases.len() == 1;
        let has_group = select.has_aggregates() || !select.group_by.is_empty();
        // A bare LIMIT (no ORDER BY, no aggregation) stops pulling the
        // pipeline lazily after k output rows; parallel sources and the
        // partitioned join work in eager batches and would forfeit that
        // early termination, so such statements stay on the serial
        // streaming operators end to end.
        let limit_stops_early =
            select.limit.is_some() && select.order_by.is_empty() && !has_group;
        // Store-level LIMIT pushdown: safe only when no downstream operator
        // can drop or reorder rows, i.e. a bare single-table `LIMIT k`.
        // Every other shape still benefits from stream laziness (the source
        // stops being pulled after `k` output rows).
        let store_limit = if single_table
            && conditions.is_empty()
            && residual.is_empty()
            && select.order_by.is_empty()
            && !has_group
        {
            select.limit.unwrap_or(0)
        } else {
            0
        };

        // Source: the start alias's scan/get stream.
        let (start_alias, start_def) = &aliases[start];
        let mut stream: RowStream<'_> = self.alias_stream(
            start_alias,
            start_def,
            &conditions,
            select,
            single_table,
            store_limit,
            limit_stops_early,
        )?;

        // Hash joins: each step materializes its build side (the newly
        // joined alias) and streams the probe side through it.
        for (idx, cond_idxs) in &join_steps {
            let (next_alias, next_def) = &aliases[*idx];
            let join_conds: Vec<&BoundCondition> =
                cond_idxs.iter().map(|&i| &conditions[i]).collect();
            // Build sides are always fully drained, so they may use the
            // parallel source regardless of the statement's LIMIT shape.
            let right_stream =
                self.alias_stream(next_alias, next_def, &conditions, select, false, 0, false)?;
            let right_rows = collect_stream(right_stream, &meter)?;
            stream = if self.threads > 1 && !limit_stops_early && !join_conds.is_empty() {
                self.par_hash_join(stream, right_rows, next_alias, join_conds, &meter)?
            } else {
                self.hash_join_stream(stream, right_rows, next_alias, join_conds)
            };
        }

        if !residual.is_empty() {
            stream = Box::new(stream.filter(move |row| match row {
                Ok(row) => residual.iter().all(|c| evaluate_condition(row, c)),
                Err(_) => true,
            }));
        }

        let rows: Vec<Row> = if has_group {
            // Aggregation needs the whole input; ORDER BY + LIMIT then act
            // on the (small) per-group output.
            let input = collect_stream(stream, &meter)?;
            let mut rows = self.apply_group_and_aggregates(select, input)?;
            rows = apply_order_by(select, rows);
            if let Some(limit) = select.limit {
                rows.truncate(limit);
            }
            rows
        } else if !select.order_by.is_empty() {
            let cmp = order_comparator(select);
            match select.limit {
                // Per-worker bounded heaps merged at the barrier: each
                // worker selects its chunk's k best, the merge re-selects
                // over the ≤ threads·k survivors.
                Some(limit) if self.threads > 1 => {
                    par_top_k(stream, limit, cmp, &meter, self.threads)?
                }
                // Bounded top-k heap: k rows resident instead of the full
                // input, and the heap short-circuits nothing upstream only
                // because ORDER BY inherently needs every input row.
                Some(limit) => top_k(stream, limit, cmp, &meter)?,
                None => {
                    let mut rows = collect_stream(stream, &meter)?;
                    rows.sort_by(|a, b| cmp(a, b));
                    rows
                }
            }
        } else if let Some(limit) = select.limit {
            // Plain LIMIT: stop pulling the pipeline after `limit` rows.
            // The bound is checked *before* each pull — pulling one row past
            // the limit could fetch (and charge) a whole extra store page.
            let mut rows = Vec::with_capacity(limit.min(1_024));
            while rows.len() < limit {
                let Some(row) = stream.next() else { break };
                rows.push(row?);
                meter.add(1);
            }
            rows
        } else {
            collect_stream(stream, &meter)?
        };

        let rows = project(select, rows);
        self.cluster
            .clock()
            .charge(self.cluster.cost_model().client_result_cost(rows.len() as u64));
        Ok(QueryResult::with_rows(rows).with_peak_rows_resident(meter.peak()))
    }

    /// Chooses the starting alias for the join order: prefer one whose access
    /// path is a key Get, then an index scan, then the first alias.
    fn pick_start_alias(
        &self,
        aliases: &[(String, TableDef)],
        conditions: &[BoundCondition],
        select: &SelectStatement,
    ) -> usize {
        let mut best = 0;
        let mut best_rank = i32::MAX;
        for (i, (alias, def)) in aliases.iter().enumerate() {
            let path = self.plan_access(alias, def, conditions, select);
            let rank = match path {
                AccessPath::KeyGet => 0,
                AccessPath::IndexScan { .. } => 1,
                AccessPath::KeyPrefixScan => 2,
                AccessPath::FullScan => 3,
            };
            if rank < best_rank {
                best_rank = rank;
                best = i;
            }
        }
        best
    }

    /// Plans how one alias will be accessed given its single-alias equality
    /// filters.
    pub(crate) fn plan_access(
        &self,
        alias: &str,
        def: &TableDef,
        conditions: &[BoundCondition],
        select: &SelectStatement,
    ) -> AccessPath {
        let eq_filters = single_alias_eq_filters(conditions, alias, def, &select.from);
        if !eq_filters.is_empty() {
            let filter_columns: Vec<String> = eq_filters.keys().cloned().collect();
            if def.key_covered_by(&filter_columns) {
                return AccessPath::KeyGet;
            }
            if filter_columns.iter().any(|c| c == &def.key[0]) {
                return AccessPath::KeyPrefixScan;
            }
            for index in self.catalog.indexes_of(&def.name) {
                if filter_columns.iter().any(|c| c == &index.key[0]) {
                    return AccessPath::IndexScan {
                        index: index.name.clone(),
                    };
                }
            }
        }
        AccessPath::FullScan
    }

    /// Opens the stream of one alias's rows: the access path's scan cursor
    /// (or point Get), mapped through dirty detection and projected decode,
    /// filtered by the alias's single-alias conditions.  Attributes are
    /// qualified as `alias.column` (bare names when this is a single-table
    /// statement: [`Row::get`]'s suffix matching makes qualified lookups
    /// work either way).
    ///
    /// A dirty marker observed anywhere in the stream surfaces as
    /// [`QueryError::DirtyRestart`], which restarts the whole statement.
    /// `store_limit` (0 = none) is pushed into the store scan when the
    /// caller has proven no downstream operator drops rows.
    /// `prefer_serial` keeps the source on the serial cursor even at
    /// `threads > 1` — set when a bare LIMIT downstream stops pulling
    /// early, which the batch-eager parallel source would forfeit.
    #[allow(clippy::too_many_arguments)]
    fn alias_stream<'a>(
        &'a self,
        alias: &str,
        def: &'a TableDef,
        conditions: &'a [BoundCondition],
        select: &'a SelectStatement,
        single_table: bool,
        store_limit: usize,
        prefer_serial: bool,
    ) -> Result<RowStream<'a>, QueryError> {
        let eq_filters = single_alias_eq_filters(conditions, alias, def, &select.from);
        let path = self.plan_access(alias, def, conditions, select);

        // Projection pushdown: decode only the columns the statement can
        // observe (`None` = all of them, e.g. under a wildcard).
        let needed = needed_columns(select, alias, def);
        let mask = column_mask(def, &needed);
        // Per-alias qualified-name table, interned once per statement.
        let qual_syms: Option<Vec<Symbol>> = (!single_table).then(|| {
            def.columns
                .iter()
                .map(|(name, _)| intern::intern(&format!("{alias}.{name}")))
                .collect()
        });
        let plan = DecodePlan { def, qual_syms, mask };

        let base: RowStream<'a> = match path {
            AccessPath::KeyGet => {
                let key_row = Row::from_pairs(
                    eq_filters.iter().map(|(k, v)| (k.as_str(), v.clone())),
                );
                let key = def.encode_row_key(&key_row);
                let row = match self.cluster.get(&def.name, self.bounded_get(key))? {
                    Some(stored) => {
                        if self.is_dirty(&stored) {
                            return Err(QueryError::DirtyRestart);
                        }
                        Some(plan.decode(&stored))
                    }
                    None => None,
                };
                Box::new(row.into_iter().map(Ok))
            }
            AccessPath::KeyPrefixScan => {
                let key_row = Row::from_pairs(
                    eq_filters.iter().map(|(k, v)| (k.as_str(), v.clone())),
                );
                // Use as many leading key components as are bound.
                let bound = def
                    .key
                    .iter()
                    .take_while(|k| eq_filters.contains_key(*k))
                    .count();
                let mut prefix = def.encode_key_prefix(&key_row, bound);
                if bound < def.key.len() {
                    // Close the last bound component so that e.g. "42"
                    // does not also match keys starting with "420".
                    prefix.push(KEY_DELIMITER);
                }
                let scan = Scan::prefix(prefix)
                    .with_columns(self.scan_projection(def, plan.mask.as_deref()));
                let cursor = self.cluster.scan_stream(&def.name, self.bounded_scan(scan))?;
                Box::new(cursor.map(move |stored| {
                    if self.is_dirty(&stored) {
                        return Err(QueryError::DirtyRestart);
                    }
                    Ok(plan.decode(&stored))
                }))
            }
            AccessPath::IndexScan { index } => {
                let index_def = self
                    .catalog
                    .table(&index)
                    .ok_or_else(|| QueryError::UnknownTable(index.clone()))?;
                let filter_value = eq_filters
                    .get(&index_def.key[0])
                    .cloned()
                    .unwrap_or(Value::Null);
                let mut prefix = encode_key([&filter_value]);
                if index_def.key.len() > 1 {
                    // Match only complete values of the indexed column.
                    prefix.push(KEY_DELIMITER);
                }
                let covered = needed
                    .as_ref()
                    .map(|needed| needed.iter().all(|c| index_def.column_type(c).is_some()))
                    .unwrap_or_else(|| {
                        def.columns
                            .iter()
                            .all(|(c, _)| index_def.column_type(c).is_some())
                    });
                if covered {
                    // The index table shares column names with the base
                    // table, so the same qualified-name table applies; its
                    // symbols are indexed by the *index* def's column order.
                    let index_qual_syms: Option<Vec<Symbol>> = (!single_table).then(|| {
                        index_def
                            .columns
                            .iter()
                            .map(|(name, _)| intern::intern(&format!("{alias}.{name}")))
                            .collect()
                    });
                    let index_plan = DecodePlan {
                        def: index_def,
                        qual_syms: index_qual_syms,
                        mask: column_mask(index_def, &needed),
                    };
                    let scan = Scan::prefix(prefix)
                        .with_columns(self.scan_projection(index_def, index_plan.mask.as_deref()));
                    let cursor =
                        self.cluster.scan_stream(&index_def.name, self.bounded_scan(scan))?;
                    Box::new(cursor.map(move |stored| {
                        if self.is_dirty(&stored) {
                            return Err(QueryError::DirtyRestart);
                        }
                        Ok(index_plan.decode(&stored))
                    }))
                } else {
                    // Stream the index entries and look up each base row by
                    // primary key as it is pulled; the index row is decoded
                    // bare (it only feeds key encoding).
                    let cursor = self
                        .cluster
                        .scan_stream(&index_def.name, self.bounded_scan(Scan::prefix(prefix)))?;
                    Box::new(
                        cursor
                            .map(move |stored| -> Result<Option<Row>, QueryError> {
                                if self.is_dirty(&stored) {
                                    return Err(QueryError::DirtyRestart);
                                }
                                let index_row = index_def.decode_row(&stored);
                                let base_key = def.encode_row_key(&index_row);
                                match self.cluster.get(&def.name, self.bounded_get(base_key))? {
                                    Some(base) => {
                                        if self.is_dirty(&base) {
                                            return Err(QueryError::DirtyRestart);
                                        }
                                        Ok(Some(plan.decode(&base)))
                                    }
                                    None => Ok(None),
                                }
                            })
                            .filter_map(Result::transpose),
                    )
                }
            }
            AccessPath::FullScan => {
                let scan = Scan::all()
                    .with_limit(store_limit)
                    .with_columns(self.scan_projection(def, plan.mask.as_deref()));
                // Parallel source: region-partitioned scan workers feeding
                // batch-parallel decode.  Limit-pushed scans stay serial —
                // they touch O(k) rows, below any fan-out's break-even —
                // as do sources a bare LIMIT will stop pulling early.
                if self.threads > 1 && store_limit == 0 && !prefer_serial {
                    let cursor = self.cluster.par_scan_stream(
                        &def.name,
                        self.bounded_scan(scan),
                        self.threads,
                    )?;
                    Box::new(ParDecodeStream {
                        cursor,
                        plan,
                        dirty_protection: self.dirty_protection,
                        threads: self.threads,
                        batch: Vec::new().into_iter(),
                    })
                } else {
                    let cursor = self.cluster.scan_stream(&def.name, self.bounded_scan(scan))?;
                    Box::new(cursor.map(move |stored| {
                        if self.is_dirty(&stored) {
                            return Err(QueryError::DirtyRestart);
                        }
                        Ok(plan.decode(&stored))
                    }))
                }
            }
        };

        // Apply every single-alias filter (equality and range) on the
        // stream; residual multi-alias conditions are applied after joins.
        let single_alias_conds: Vec<&BoundCondition> = conditions
            .iter()
            .filter(|c| condition_is_single_alias(c, alias, def, &select.from))
            .collect();
        if single_alias_conds.is_empty() {
            return Ok(base);
        }
        Ok(Box::new(base.filter(move |row| match row {
            Ok(row) => single_alias_conds.iter().all(|c| {
                let left = row.get_interned(&c.left_sym);
                match (&c.right, left) {
                    (BoundOperand::Value(v), Some(l)) => c.op.evaluate(l, v),
                    _ => false,
                }
            }),
            Err(_) => true,
        })))
    }

    /// Pushes the statement's column projection into the store scan: only
    /// the masked-in columns, the key columns (never null, so a projected
    /// row is never empty at the store) and — under dirty protection — the
    /// dirty marker are streamed back.  Empty = no projection (all columns).
    fn scan_projection(&self, def: &TableDef, mask: Option<&[bool]>) -> Vec<(String, String)> {
        let Some(mask) = mask else {
            return Vec::new();
        };
        let mut columns: Vec<(String, String)> = Vec::new();
        for (i, (name, _)) in def.columns.iter().enumerate() {
            if mask[i] || def.key.iter().any(|k| k == name) {
                columns.push((FAMILY.to_string(), name.clone()));
            }
        }
        if self.dirty_protection {
            columns.push((FAMILY.to_string(), DIRTY_MARKER.to_string()));
        }
        columns
    }

    /// Builds a Get honouring the executor's snapshot bound, if any.
    fn bounded_get(&self, key: String) -> Get {
        match self.snapshot {
            Some(ts) => Get::new(key).up_to(ts),
            None => Get::new(key),
        }
    }

    /// Applies the executor's snapshot bound to a scan, if any.  Public so
    /// higher layers (e.g. Synergy view maintenance) can issue store scans
    /// that cannot observe rows newer than the statement's snapshot.
    pub fn bounded_scan(&self, scan: Scan) -> Scan {
        match self.snapshot {
            Some(ts) => scan.up_to(ts),
            None => scan,
        }
    }

    fn is_dirty(&self, stored: &nosql_store::ResultRow) -> bool {
        self.dirty_protection && stored_row_is_dirty(stored)
    }

    /// Client-side hash join: the build side (`right`, the newly joined
    /// alias) is materialized and hashed; the probe side streams through it
    /// row by row, so the intermediate result is never buffered.  Charges
    /// shuffle cost per row on both sides and probe cost per probe —
    /// identical totals to the former materialized join when the stream is
    /// fully consumed, and strictly less when a LIMIT stops it early.
    ///
    /// Both sides are frozen, so every emitted row shares its left and
    /// right halves as `Arc` slices ([`Row::join_concat`]) with the input
    /// rows instead of deep-cloning the entries.
    fn hash_join_stream<'a>(
        &'a self,
        left: RowStream<'a>,
        mut right: Vec<Row>,
        right_alias: &str,
        join_conds: Vec<&BoundCondition>,
    ) -> RowStream<'a> {
        let model = self.cluster.cost_model();
        self.cluster
            .clock()
            .charge(model.shuffle_cost(right.len() as u64));
        for row in &mut right {
            row.freeze();
        }

        if join_conds.is_empty() {
            // Cross join (rare; only used when the workload really asks for it).
            return Box::new(left.flat_map(move |l| -> Vec<Result<Row, QueryError>> {
                match l {
                    Err(e) => vec![Err(e)],
                    Ok(mut l) => {
                        self.cluster.clock().charge(model.shuffle_cost(1));
                        l.freeze();
                        right.iter().map(|r| Ok(l.join_concat(r))).collect()
                    }
                }
            }));
        }

        // Join-key symbols, resolved once per join instead of one
        // `format!("{alias}.{column}")` per row per condition.
        let right_syms: Vec<Symbol> = join_conds
            .iter()
            .map(|c| {
                let col = join_column_for_alias(c, right_alias);
                intern::intern(&format!("{right_alias}.{}", col.column))
            })
            .collect();
        let left_syms: Vec<Symbol> = join_conds
            .iter()
            .map(|c| resolve_col(join_column_other_side(c, right_alias)))
            .collect();

        // Build side: hash the right rows on the join attribute values.
        let mut build: HashMap<JoinKey, Vec<usize>> = HashMap::with_capacity(right.len());
        for (i, row) in right.iter().enumerate() {
            if let Some(key) = JoinKey::of(row, &right_syms) {
                build.entry(key).or_default().push(i);
            }
        }

        Box::new(left.flat_map(move |l| -> Vec<Result<Row, QueryError>> {
            match l {
                Err(e) => vec![Err(e)],
                Ok(mut l) => {
                    self.cluster
                        .clock()
                        .charge(model.shuffle_cost(1) + model.probe_cost(1));
                    l.freeze();
                    let Some(key) = JoinKey::of(&l, &left_syms) else {
                        return Vec::new();
                    };
                    match build.get(&key) {
                        Some(matches) => matches
                            .iter()
                            .map(|&i| Ok(l.join_concat(&right[i])))
                            .collect(),
                        None => Vec::new(),
                    }
                }
            }
        }))
    }

    /// Partitioned parallel hash join.  The build side is hash-partitioned
    /// into `threads` independent hash tables built concurrently; the probe
    /// side is materialized (metered through `meter`, since the rows really
    /// are resident), chunked contiguously, and each chunk probes the shared
    /// read-only partition tables on its own worker.  Chunk outputs
    /// concatenate in probe order and partition tables preserve build-row
    /// order per key, so the emitted rows are **identical, order included**,
    /// to [`Executor::hash_join_stream`].
    ///
    /// Sim accounting follows the parallel merge rule: the build-side
    /// shuffle charges in full (sum — every row is shipped by some worker),
    /// while the per-probe-row shuffle + probe cost charges for the largest
    /// chunk only (max — workers probe concurrently).
    fn par_hash_join<'a>(
        &'a self,
        left: RowStream<'a>,
        mut right: Vec<Row>,
        right_alias: &str,
        join_conds: Vec<&BoundCondition>,
        meter: &Residency,
    ) -> Result<RowStream<'a>, QueryError> {
        let threads = self.threads;
        let model = self.cluster.cost_model();
        self.cluster
            .clock()
            .charge(model.shuffle_cost(right.len() as u64));
        for row in &mut right {
            row.freeze();
        }

        let right_syms: Vec<Symbol> = join_conds
            .iter()
            .map(|c| {
                let col = join_column_for_alias(c, right_alias);
                intern::intern(&format!("{right_alias}.{}", col.column))
            })
            .collect();
        let left_syms: Vec<Symbol> = join_conds
            .iter()
            .map(|c| resolve_col(join_column_other_side(c, right_alias)))
            .collect();

        // Partition pass (serial, O(build), one key extraction per row),
        // then per-partition table builds on the pool.  Indices stay
        // ascending within a partition, so each key's match list keeps
        // build-row order.
        let mut partitions: Vec<Vec<(JoinKey, usize)>> = vec![Vec::new(); threads];
        for (i, row) in right.iter().enumerate() {
            if let Some(key) = JoinKey::of(row, &right_syms) {
                partitions[partition_of(&key, threads)].push((key, i));
            }
        }
        let tables: Vec<HashMap<JoinKey, Vec<usize>>> =
            pool::map(partitions, threads, |entries| {
                let mut table: HashMap<JoinKey, Vec<usize>> =
                    HashMap::with_capacity(entries.len());
                for (key, i) in entries {
                    table.entry(key).or_default().push(i);
                }
                table
            });

        // Probe side: materialize and meter, then probe chunk-parallel.
        let probe = collect_stream(left, meter)?;
        let ranges = pool::chunk_ranges(probe.len(), threads);
        let largest_chunk = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0) as u64;
        self.cluster
            .clock()
            .charge(model.shuffle_cost(largest_chunk) + model.probe_cost(largest_chunk));
        let tables_ref = &tables;
        let left_syms_ref = &left_syms;
        let right_ref = &right;
        let outputs: Vec<Vec<Row>> = pool::map_chunked(probe, threads, |chunk| {
            let mut out = Vec::new();
            for mut l in chunk {
                l.freeze();
                let Some(key) = JoinKey::of(&l, left_syms_ref) else {
                    continue;
                };
                if let Some(matches) = tables_ref[partition_of(&key, threads)].get(&key) {
                    out.extend(matches.iter().map(|&i| l.join_concat(&right_ref[i])));
                }
            }
            out
        });
        Ok(Box::new(outputs.into_iter().flatten().map(Ok)))
    }

    fn apply_group_and_aggregates(
        &self,
        select: &SelectStatement,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, QueryError> {
        if !select.has_aggregates() && select.group_by.is_empty() {
            return Ok(rows);
        }
        // Resolve GROUP BY and item columns once.
        let group_syms: Vec<(Symbol, Symbol)> = select
            .group_by
            .iter()
            .map(|c| (resolve_col(c), intern::intern(&c.column)))
            .collect();

        // Group rows by the GROUP BY key (a single group when absent).
        let mut groups: BTreeMap<Vec<Value>, Vec<Row>> = BTreeMap::new();
        for row in rows {
            let key: Vec<Value> = group_syms
                .iter()
                .map(|(sym, _)| row.get_interned(sym).cloned().unwrap_or(Value::Null))
                .collect();
            groups.entry(key).or_default().push(row);
        }
        if groups.is_empty() && select.group_by.is_empty() {
            groups.insert(Vec::new(), Vec::new());
        }

        // Resolve the SELECT items once.
        enum ItemPlan {
            Aggregate {
                function: AggregateFunction,
                argument: Option<Symbol>,
                name: Symbol,
            },
            Column {
                lookup: Symbol,
                out: Symbol,
                alias: Option<Symbol>,
            },
            Wildcard,
        }
        let plans: Vec<ItemPlan> = select
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Aggregate {
                    function,
                    argument,
                    alias,
                } => {
                    let name = alias.clone().unwrap_or_else(|| match argument {
                        Some(a) => format!("{function}({})", a.qualified_name()),
                        None => format!("{function}(*)"),
                    });
                    ItemPlan::Aggregate {
                        function: *function,
                        argument: argument.as_ref().map(resolve_col),
                        name: intern::intern(&name),
                    }
                }
                SelectItem::Column { column, alias } => ItemPlan::Column {
                    lookup: resolve_col(column),
                    out: intern::intern(&column.qualified_name()),
                    alias: alias.as_deref().map(intern::intern),
                },
                SelectItem::Wildcard => ItemPlan::Wildcard,
            })
            .collect();

        let mut out = Vec::new();
        for (key, members) in groups {
            let mut row = Row::new();
            for (i, (qualified, bare)) in group_syms.iter().enumerate() {
                row.set_interned(qualified.clone(), key[i].clone());
                row.set_interned(bare.clone(), key[i].clone());
            }
            for plan in &plans {
                match plan {
                    ItemPlan::Aggregate {
                        function,
                        argument,
                        name,
                    } => {
                        let value = compute_aggregate(*function, argument.as_ref(), &members);
                        row.set_interned(name.clone(), value);
                    }
                    ItemPlan::Column { lookup, out, alias } => {
                        let value = members
                            .first()
                            .and_then(|m| m.get_interned(lookup))
                            .cloned()
                            .unwrap_or(Value::Null);
                        row.set_interned(out.clone(), value.clone());
                        if let Some(a) = alias {
                            row.set_interned(a.clone(), value);
                        }
                    }
                    ItemPlan::Wildcard => {
                        if let Some(first) = members.first() {
                            for (sym, v) in first.iter_interned() {
                                row.set_interned(sym.clone(), v.clone());
                            }
                        }
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// Helpers (free functions so they are easy to unit test)
// ----------------------------------------------------------------------

/// The hash partition a join key belongs to.  `DefaultHasher::new()` is
/// deterministic (fixed keys), so build and probe agree — and repeated runs
/// partition identically, keeping parallel sim figures reproducible.
fn partition_of(key: &JoinKey, parts: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % parts.max(1) as u64) as usize
}

pub(crate) fn bind_conditions(
    conditions: &[Condition],
    params: &[Value],
) -> Result<Vec<BoundCondition>, QueryError> {
    conditions
        .iter()
        .map(|c| {
            let right = match &c.right {
                Expr::Column(col) => BoundOperand::Column(col.clone(), resolve_col(col)),
                Expr::Literal(v) => BoundOperand::Value(v.clone()),
                Expr::Parameter(i) => BoundOperand::Value(
                    params
                        .get(*i)
                        .cloned()
                        .ok_or(QueryError::MissingParameter(*i))?,
                ),
            };
            Ok(BoundCondition {
                left: c.left.clone(),
                left_sym: resolve_col(&c.left),
                op: c.op,
                right,
            })
        })
        .collect()
}

pub(crate) fn bind_expr(expr: &Expr, params: &[Value]) -> Result<Value, QueryError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Parameter(i) => params
            .get(*i)
            .cloned()
            .ok_or(QueryError::MissingParameter(*i)),
        Expr::Column(c) => Err(QueryError::Unsupported(format!(
            "column reference {c} cannot be used as a scalar value here"
        ))),
    }
}

/// True if the condition only involves the given alias (its left column is a
/// column of `def` referenced through `alias` or unqualified-and-unambiguous)
/// and compares against a constant.
fn condition_is_single_alias(
    c: &BoundCondition,
    alias: &str,
    def: &TableDef,
    from: &[sql::TableRef],
) -> bool {
    if !matches!(c.right, BoundOperand::Value(_)) {
        return false;
    }
    column_belongs_to_alias(&c.left, alias, def, from)
}

fn column_belongs_to_alias(
    col: &ColumnRef,
    alias: &str,
    def: &TableDef,
    from: &[sql::TableRef],
) -> bool {
    match &col.qualifier {
        Some(q) => q == alias && def.column_type(&col.column).is_some(),
        // Unqualified: belongs to this alias when the column exists here and
        // this is the only FROM entry that declares it (TPC-W queries only
        // use unqualified names when they are unambiguous).
        None => def.column_type(&col.column).is_some() && from.len() == 1,
    }
}

/// The single-alias equality filters for an alias, as column → value.
fn single_alias_eq_filters(
    conditions: &[BoundCondition],
    alias: &str,
    def: &TableDef,
    from: &[sql::TableRef],
) -> BTreeMap<String, Value> {
    let mut out = BTreeMap::new();
    for c in conditions {
        if c.op == Comparison::Eq && condition_is_single_alias(c, alias, def, from) {
            if let BoundOperand::Value(v) = &c.right {
                out.insert(c.left.column.clone(), v.clone());
            }
        }
    }
    out
}

/// Columns of `alias` that the query needs (for covered-index decisions and
/// projection pushdown); `None` means "all of them" (wildcard).
fn needed_columns(select: &SelectStatement, alias: &str, def: &TableDef) -> Option<Vec<String>> {
    let mut needed: Vec<String> = Vec::new();
    let mut add = |col: &ColumnRef| {
        let belongs = match &col.qualifier {
            Some(q) => q == alias,
            None => def.column_type(&col.column).is_some(),
        };
        if belongs && !needed.contains(&col.column) {
            needed.push(col.column.clone());
        }
    };
    for item in &select.items {
        match item {
            SelectItem::Wildcard => return None,
            SelectItem::Column { column, .. } => add(column),
            SelectItem::Aggregate { argument, .. } => {
                if let Some(a) = argument {
                    add(a);
                }
            }
        }
    }
    for c in &select.conditions {
        add(&c.left);
        if let Expr::Column(col) = &c.right {
            add(col);
        }
    }
    for c in &select.group_by {
        add(c);
    }
    for k in &select.order_by {
        add(&k.column);
    }
    Some(needed)
}

/// Builds the per-column decode mask for `needed` columns (`None` = decode
/// everything, also used when every column is needed anyway).
fn column_mask(def: &TableDef, needed: &Option<Vec<String>>) -> Option<Vec<bool>> {
    let needed = needed.as_ref()?;
    let mut mask = vec![false; def.columns.len()];
    let mut all = true;
    for (i, (name, _)) in def.columns.iter().enumerate() {
        let keep = needed.iter().any(|n| n == name);
        mask[i] = keep;
        all &= keep;
    }
    if all {
        None
    } else {
        Some(mask)
    }
}

/// Equi-join conditions connecting `alias` to any of `joined`, with their
/// index in the bound-condition list.
fn join_conditions_between<'a>(
    conditions: &'a [BoundCondition],
    alias: &'a str,
    joined: &'a [String],
) -> impl Iterator<Item = (usize, &'a BoundCondition)> {
    conditions.iter().enumerate().filter(move |(_, c)| {
        if c.op != Comparison::Eq {
            return false;
        }
        let BoundOperand::Column(right, _) = &c.right else {
            return false;
        };
        let lq = c.left.qualifier.as_deref();
        let rq = right.qualifier.as_deref();
        match (lq, rq) {
            (Some(l), Some(r)) => {
                (l == alias && joined.iter().any(|j| j == r))
                    || (r == alias && joined.iter().any(|j| j == l))
            }
            _ => false,
        }
    })
}

/// The side of a join condition that belongs to `alias`.
fn join_column_for_alias<'a>(c: &'a BoundCondition, alias: &str) -> &'a ColumnRef {
    let BoundOperand::Column(right, _) = &c.right else {
        return &c.left;
    };
    if right.qualifier.as_deref() == Some(alias) {
        right
    } else {
        &c.left
    }
}

/// The side of a join condition that does *not* belong to `alias`.
fn join_column_other_side<'a>(c: &'a BoundCondition, alias: &str) -> &'a ColumnRef {
    let BoundOperand::Column(right, _) = &c.right else {
        return &c.left;
    };
    if right.qualifier.as_deref() == Some(alias) {
        &c.left
    } else {
        right
    }
}

/// Evaluates any bound condition against a joined row (used for residual
/// predicates).  Conditions whose columns are absent evaluate to true so that
/// filters already applied during the per-alias fetch are not re-applied
/// against rows that legitimately dropped reserved columns.
fn evaluate_condition(row: &Row, c: &BoundCondition) -> bool {
    let Some(left) = row.get_interned(&c.left_sym) else {
        return true;
    };
    match &c.right {
        BoundOperand::Value(v) => c.op.evaluate(left, v),
        BoundOperand::Column(_, sym) => match row.get_interned(sym) {
            Some(r) => c.op.evaluate(left, r),
            None => true,
        },
    }
}

fn compute_aggregate(
    function: AggregateFunction,
    argument: Option<&Symbol>,
    members: &[Row],
) -> Value {
    let values: Vec<&Value> = match argument {
        None => return Value::Int(members.len() as i64),
        Some(sym) => members
            .iter()
            .filter_map(|m| m.get_interned(sym))
            .filter(|v| !v.is_null())
            .collect(),
    };
    match function {
        AggregateFunction::Count => Value::Int(values.len() as i64),
        AggregateFunction::Sum => {
            let sum: f64 = values.iter().filter_map(|v| v.as_float()).sum();
            if values.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggregateFunction::Avg => {
            if values.is_empty() {
                Value::Null
            } else {
                let sum: f64 = values.iter().filter_map(|v| v.as_float()).sum();
                Value::Float(sum / values.len() as f64)
            }
        }
        AggregateFunction::Min => values.iter().min().copied().cloned().unwrap_or(Value::Null),
        AggregateFunction::Max => values.iter().max().copied().cloned().unwrap_or(Value::Null),
    }
}

/// The ORDER BY comparator with its sort keys resolved once; shared by the
/// full sort and the bounded top-k operator.
fn order_comparator(select: &SelectStatement) -> impl Fn(&Row, &Row) -> Ordering {
    let keys: Vec<(Symbol, bool)> = select
        .order_by
        .iter()
        .map(|key| (resolve_col(&key.column), key.descending))
        .collect();
    move |a: &Row, b: &Row| {
        for (sym, descending) in &keys {
            let av = a.get_interned(sym);
            let bv = b.get_interned(sym);
            let ord = match (av, bv) {
                (Some(a), Some(b)) => a.cmp(b),
                (Some(a), None) => a.cmp(&Value::Null),
                (None, Some(b)) => Value::Null.cmp(b),
                (None, None) => Ordering::Equal,
            };
            let ord = if *descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

fn apply_order_by(select: &SelectStatement, mut rows: Vec<Row>) -> Vec<Row> {
    if select.order_by.is_empty() {
        return rows;
    }
    let cmp = order_comparator(select);
    rows.sort_by(|a, b| cmp(a, b));
    rows
}

fn project(select: &SelectStatement, rows: Vec<Row>) -> Vec<Row> {
    let wildcard = select.items.iter().any(|i| matches!(i, SelectItem::Wildcard));
    if wildcard || select.has_aggregates() {
        return rows;
    }
    // Resolve lookup and output symbols once per statement.
    let cols: Vec<(Symbol, Symbol)> = select
        .items
        .iter()
        .filter_map(|item| {
            let SelectItem::Column { column, alias } = item else {
                return None;
            };
            let out = match alias {
                Some(a) => intern::intern(a),
                None => intern::intern(&column.qualified_name()),
            };
            Some((resolve_col(column), out))
        })
        .collect();
    rows.into_iter()
        .map(|row| {
            let mut out = Row::with_capacity(cols.len());
            for (lookup, name) in &cols {
                let value = row.get_interned(lookup).cloned().unwrap_or(Value::Null);
                out.set_interned(name.clone(), value);
            }
            out
        })
        .collect()
}
