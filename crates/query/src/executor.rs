//! Statement execution: access-path selection, client-side hash joins,
//! aggregation, ordering and projection.
//!
//! The executor mirrors how Phoenix evaluates SQL over HBase: single-table
//! predicates become Gets or range Scans (using covered indexes when one
//! matches), while joins are executed client-side by scanning each
//! participating table and hash-joining the streams.  Every operation's cost
//! is charged through the cluster, and intermediate join rows additionally
//! pay the shuffle/probe costs of [`simclock::CostModel`] — the data-transfer
//! latency the paper identifies as the reason joins are slow in a NoSQL
//! store (§III).

use crate::catalog::{Catalog, TableDef, FAMILY};
use crate::result::{QueryError, QueryResult};
use nosql_store::ops::{Get, Scan};
use nosql_store::Cluster;
use relational::{encode_key, Row, Value, KEY_DELIMITER};
use sql::{
    AggregateFunction, ColumnRef, Comparison, Condition, Expr, SelectItem, SelectStatement,
    Statement,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Reserved column marking a row as dirty during a Synergy view update.
pub const DIRTY_MARKER: &str = "_dirty";

/// Maximum number of times a scan is restarted after observing dirty rows.
/// Restarts are cheap (the marked window is a handful of store operations),
/// so the limit is generous; it exists only to turn a livelock into an error.
const DIRTY_RETRY_LIMIT: usize = 4_096;

/// How a single table reference will be accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Point Get by full primary key.
    KeyGet,
    /// Range scan on a prefix of the row key.
    KeyPrefixScan,
    /// Prefix scan of a covered index table.
    IndexScan {
        /// Name of the index table used.
        index: String,
    },
    /// Full table scan.
    FullScan,
}

/// Executes SQL statements against a [`Cluster`] using a [`Catalog`].
#[derive(Clone)]
pub struct Executor {
    cluster: Cluster,
    catalog: Arc<Catalog>,
    dirty_protection: bool,
    snapshot: Option<nosql_store::Timestamp>,
}

/// A WHERE conjunct with parameters bound to concrete values.
#[derive(Debug, Clone)]
pub(crate) struct BoundCondition {
    pub left: ColumnRef,
    pub op: Comparison,
    pub right: BoundOperand,
}

#[derive(Debug, Clone)]
pub(crate) enum BoundOperand {
    Value(Value),
    Column(ColumnRef),
}

impl Executor {
    /// Creates an executor over `cluster` with the given catalog.
    pub fn new(cluster: Cluster, catalog: Catalog) -> Self {
        Executor {
            cluster,
            catalog: Arc::new(catalog),
            dirty_protection: false,
            snapshot: None,
        }
    }

    /// Enables dirty-row detection: scans that observe a row whose
    /// [`DIRTY_MARKER`] column equals `"1"` are restarted, implementing the
    /// read-committed protocol of paper §VIII-C.
    pub fn with_dirty_read_protection(mut self) -> Self {
        self.dirty_protection = true;
        self
    }

    /// Restricts reads to cell versions written at or before `snapshot`.
    /// Used by the MVCC layer to give statements a consistent snapshot.
    pub fn with_snapshot_bound(mut self, snapshot: nosql_store::Timestamp) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses and executes a SQL string.
    pub fn execute_sql(&self, sql_text: &str, params: &[Value]) -> Result<QueryResult, QueryError> {
        let stmt = sql::parse_statement(sql_text)
            .map_err(|e| QueryError::Unsupported(e.to_string()))?;
        self.execute(&stmt, params)
    }

    /// Executes a parsed statement with positional parameters.
    pub fn execute(&self, stmt: &Statement, params: &[Value]) -> Result<QueryResult, QueryError> {
        match stmt {
            Statement::Select(select) => self.execute_select(select, params),
            Statement::Insert(insert) => self.execute_insert(insert, params),
            Statement::Update(update) => self.execute_update(update, params),
            Statement::Delete(delete) => self.execute_delete(delete, params),
        }
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn execute_select(
        &self,
        select: &SelectStatement,
        params: &[Value],
    ) -> Result<QueryResult, QueryError> {
        let conditions = bind_conditions(&select.conditions, params)?;

        // Resolve each FROM alias to its table definition.
        let mut aliases: Vec<(String, TableDef)> = Vec::new();
        for table_ref in &select.from {
            let def = self
                .catalog
                .table_ci(&table_ref.table)
                .ok_or_else(|| QueryError::UnknownTable(table_ref.table.clone()))?;
            aliases.push((table_ref.alias.clone(), def.clone()));
        }

        // Greedy join order: start with the alias that has the most
        // selective access path, then repeatedly add an alias connected by a
        // join condition.
        let mut remaining: Vec<usize> = (0..aliases.len()).collect();
        let start = self.pick_start_alias(&aliases, &conditions, select);
        remaining.retain(|&i| i != start);

        let (alias, def) = &aliases[start];
        let mut joined_aliases = vec![alias.clone()];
        let mut intermediate =
            self.fetch_alias_rows(alias, def, &conditions, select, aliases.len() == 1)?;

        while !remaining.is_empty() {
            // Find a remaining alias connected to what we have joined so far.
            let next_pos = remaining
                .iter()
                .position(|&i| {
                    join_conditions_between(&conditions, &aliases[i].0, &joined_aliases)
                        .next()
                        .is_some()
                })
                .unwrap_or(0);
            let idx = remaining.remove(next_pos);
            let (next_alias, next_def) = &aliases[idx];
            let join_conds: Vec<&BoundCondition> =
                join_conditions_between(&conditions, next_alias, &joined_aliases).collect();
            let right_rows = self.fetch_alias_rows(next_alias, next_def, &conditions, select, false)?;
            intermediate =
                self.hash_join(intermediate, right_rows, next_alias, &join_conds);
            joined_aliases.push(next_alias.clone());
        }

        // Residual conditions: anything not consumed as a single-alias
        // equality filter or as an equi-join key (e.g. cross-alias `<>`,
        // range filters) is applied against the joined rows.
        let rows: Vec<Row> = intermediate
            .into_iter()
            .filter(|row| conditions.iter().all(|c| evaluate_condition(row, c)))
            .collect();

        let rows = self.apply_group_and_aggregates(select, rows)?;
        let mut rows = apply_order_by(select, rows);
        if let Some(limit) = select.limit {
            rows.truncate(limit);
        }
        let rows = project(select, rows);

        self.cluster
            .clock()
            .charge(self.cluster.cost_model().client_result_cost(rows.len() as u64));
        Ok(QueryResult::with_rows(rows))
    }

    /// Chooses the starting alias for the join order: prefer one whose access
    /// path is a key Get, then an index scan, then the first alias.
    fn pick_start_alias(
        &self,
        aliases: &[(String, TableDef)],
        conditions: &[BoundCondition],
        select: &SelectStatement,
    ) -> usize {
        let mut best = 0;
        let mut best_rank = i32::MAX;
        for (i, (alias, def)) in aliases.iter().enumerate() {
            let path = self.plan_access(alias, def, conditions, select);
            let rank = match path {
                AccessPath::KeyGet => 0,
                AccessPath::IndexScan { .. } => 1,
                AccessPath::KeyPrefixScan => 2,
                AccessPath::FullScan => 3,
            };
            if rank < best_rank {
                best_rank = rank;
                best = i;
            }
        }
        best
    }

    /// Plans how one alias will be accessed given its single-alias equality
    /// filters.
    pub(crate) fn plan_access(
        &self,
        alias: &str,
        def: &TableDef,
        conditions: &[BoundCondition],
        select: &SelectStatement,
    ) -> AccessPath {
        let eq_filters = single_alias_eq_filters(conditions, alias, def, &select.from);
        if !eq_filters.is_empty() {
            let filter_columns: Vec<String> = eq_filters.keys().cloned().collect();
            if def.key_covered_by(&filter_columns) {
                return AccessPath::KeyGet;
            }
            if filter_columns.iter().any(|c| c == &def.key[0]) {
                return AccessPath::KeyPrefixScan;
            }
            for index in self.catalog.indexes_of(&def.name) {
                if filter_columns.iter().any(|c| c == &index.key[0]) {
                    return AccessPath::IndexScan {
                        index: index.name.clone(),
                    };
                }
            }
        }
        AccessPath::FullScan
    }

    /// Fetches the rows of one alias, applying its single-alias filters, and
    /// returns them with attributes qualified as `alias.column`.
    fn fetch_alias_rows(
        &self,
        alias: &str,
        def: &TableDef,
        conditions: &[BoundCondition],
        select: &SelectStatement,
        single_table: bool,
    ) -> Result<Vec<Row>, QueryError> {
        let eq_filters = single_alias_eq_filters(conditions, alias, def, &select.from);
        let path = self.plan_access(alias, def, conditions, select);
        let mut rows = Vec::new();
        let mut attempts = 0;
        loop {
            rows.clear();
            let mut dirty_seen = false;
            match &path {
                AccessPath::KeyGet => {
                    let key_row = Row::from_pairs(
                        eq_filters
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone())),
                    );
                    let key = def.encode_row_key(&key_row);
                    if let Some(stored) = self.cluster.get(&def.name, self.bounded_get(key))? {
                        if self.is_dirty(&stored) {
                            dirty_seen = true;
                        }
                        rows.push(def.decode_row(&stored));
                    }
                }
                AccessPath::KeyPrefixScan => {
                    let key_row = Row::from_pairs(
                        eq_filters
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone())),
                    );
                    // Use as many leading key components as are bound.
                    let bound = def
                        .key
                        .iter()
                        .take_while(|k| eq_filters.contains_key(*k))
                        .count();
                    let mut prefix = def.encode_key_prefix(&key_row, bound);
                    if bound < def.key.len() {
                        // Close the last bound component so that e.g. "42"
                        // does not also match keys starting with "420".
                        prefix.push(KEY_DELIMITER);
                    }
                    for stored in self.cluster.scan(&def.name, self.bounded_scan(Scan::prefix(prefix)))? {
                        if self.is_dirty(&stored) {
                            dirty_seen = true;
                        }
                        rows.push(def.decode_row(&stored));
                    }
                }
                AccessPath::IndexScan { index } => {
                    let index_def = self
                        .catalog
                        .table(index)
                        .ok_or_else(|| QueryError::UnknownTable(index.clone()))?;
                    let filter_value = eq_filters
                        .get(&index_def.key[0])
                        .cloned()
                        .unwrap_or(Value::Null);
                    let mut prefix = encode_key([&filter_value]);
                    if index_def.key.len() > 1 {
                        // Match only complete values of the indexed column.
                        prefix.push(KEY_DELIMITER);
                    }
                    let needed = needed_columns(select, alias, def);
                    let covered = needed
                        .iter()
                        .all(|c| index_def.column_type(c).is_some());
                    for stored in self.cluster.scan(&index_def.name, self.bounded_scan(Scan::prefix(prefix)))? {
                        if self.is_dirty(&stored) {
                            dirty_seen = true;
                        }
                        let index_row = index_def.decode_row(&stored);
                        if covered {
                            rows.push(index_row);
                        } else {
                            // Fetch the base row by primary key.
                            let base_key = def.encode_row_key(&index_row);
                            if let Some(base) = self.cluster.get(&def.name, self.bounded_get(base_key))? {
                                if self.is_dirty(&base) {
                                    dirty_seen = true;
                                }
                                rows.push(def.decode_row(&base));
                            }
                        }
                    }
                }
                AccessPath::FullScan => {
                    for stored in self.cluster.scan(&def.name, self.bounded_scan(Scan::all()))? {
                        if self.is_dirty(&stored) {
                            dirty_seen = true;
                        }
                        rows.push(def.decode_row(&stored));
                    }
                }
            }
            if !dirty_seen || !self.dirty_protection {
                break;
            }
            attempts += 1;
            if attempts > DIRTY_RETRY_LIMIT {
                return Err(QueryError::DirtyReadRetriesExhausted);
            }
            // Give the in-flight update a chance to finish before restarting.
            std::thread::yield_now();
        }

        // Apply every single-alias filter (equality and range) now; residual
        // multi-alias conditions are applied after the joins.
        let from = &select.from;
        let filtered: Vec<Row> = rows
            .into_iter()
            .filter(|row| {
                conditions
                    .iter()
                    .filter(|c| condition_is_single_alias(c, alias, def, from))
                    .all(|c| {
                        let left = row.get(&c.left.column);
                        match (&c.right, left) {
                            (BoundOperand::Value(v), Some(l)) => c.op.evaluate(l, v),
                            _ => false,
                        }
                    })
            })
            .collect();

        // Qualify attribute names with the alias (and keep them bare too when
        // this is a single-table query, which keeps projection simple).
        let mut qualified = Vec::with_capacity(filtered.len());
        for row in filtered {
            let mut out = Row::new();
            for (k, v) in row.iter() {
                if k.starts_with('_') {
                    continue; // reserved bookkeeping columns
                }
                out.set(format!("{alias}.{k}"), v.clone());
                if single_table {
                    out.set(k.clone(), v.clone());
                }
            }
            qualified.push(out);
        }
        Ok(qualified)
    }

    /// Builds a Get honouring the executor's snapshot bound, if any.
    fn bounded_get(&self, key: String) -> Get {
        match self.snapshot {
            Some(ts) => Get::new(key).up_to(ts),
            None => Get::new(key),
        }
    }

    /// Applies the executor's snapshot bound to a scan, if any.
    fn bounded_scan(&self, scan: Scan) -> Scan {
        match self.snapshot {
            Some(ts) => scan.up_to(ts),
            None => scan,
        }
    }

    fn is_dirty(&self, stored: &nosql_store::ResultRow) -> bool {
        self.dirty_protection
            && stored
                .value(FAMILY, DIRTY_MARKER)
                .is_some_and(|v| v == b"1")
    }

    /// Client-side hash join between the current intermediate rows and the
    /// rows of `right_alias`, on the given equi-join conditions.  Charges
    /// shuffle cost for every intermediate row and probe cost per probe.
    fn hash_join(
        &self,
        left: Vec<Row>,
        right: Vec<Row>,
        right_alias: &str,
        join_conds: &[&BoundCondition],
    ) -> Vec<Row> {
        let model = self.cluster.cost_model();
        self.cluster
            .clock()
            .charge(model.shuffle_cost((left.len() + right.len()) as u64));

        if join_conds.is_empty() {
            // Cross join (rare; only used when the workload really asks for it).
            let mut out = Vec::new();
            for l in &left {
                for r in &right {
                    let mut row = l.clone();
                    for (k, v) in r.iter() {
                        row.set(k.clone(), v.clone());
                    }
                    out.push(row);
                }
            }
            return out;
        }

        // Build side: hash the right rows on the join attribute values.
        let mut build: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
        for row in &right {
            let key: Option<Vec<Value>> = join_conds
                .iter()
                .map(|c| {
                    let col = join_column_for_alias(c, right_alias);
                    row.get(&format!("{right_alias}.{}", col.column))
                        .or_else(|| row.get(&col.column))
                        .cloned()
                })
                .collect();
            if let Some(key) = key {
                build.entry(key).or_default().push(row);
            }
        }

        self.cluster.clock().charge(model.probe_cost(left.len() as u64));

        let mut out = Vec::new();
        for l in &left {
            let key: Option<Vec<Value>> = join_conds
                .iter()
                .map(|c| {
                    let col = join_column_other_side(c, right_alias);
                    l.get(&col.qualified_name()).or_else(|| l.get(&col.column)).cloned()
                })
                .collect();
            let Some(key) = key else { continue };
            if let Some(matches) = build.get(&key) {
                for r in matches {
                    let mut row = l.clone();
                    for (k, v) in r.iter() {
                        row.set(k.clone(), v.clone());
                    }
                    out.push(row);
                }
            }
        }
        out
    }

    fn apply_group_and_aggregates(
        &self,
        select: &SelectStatement,
        rows: Vec<Row>,
    ) -> Result<Vec<Row>, QueryError> {
        if !select.has_aggregates() && select.group_by.is_empty() {
            return Ok(rows);
        }
        // Group rows by the GROUP BY key (a single group when absent).
        let mut groups: BTreeMap<Vec<Value>, Vec<Row>> = BTreeMap::new();
        for row in rows {
            let key: Vec<Value> = select
                .group_by
                .iter()
                .map(|c| row.get(&c.qualified_name()).or_else(|| row.get(&c.column)).cloned().unwrap_or(Value::Null))
                .collect();
            groups.entry(key).or_default().push(row);
        }
        if groups.is_empty() && select.group_by.is_empty() {
            groups.insert(Vec::new(), Vec::new());
        }

        let mut out = Vec::new();
        for (key, members) in groups {
            let mut row = Row::new();
            for (i, col) in select.group_by.iter().enumerate() {
                row.set(col.qualified_name(), key[i].clone());
                row.set(col.column.clone(), key[i].clone());
            }
            for item in &select.items {
                match item {
                    SelectItem::Aggregate {
                        function,
                        argument,
                        alias,
                    } => {
                        let value = compute_aggregate(*function, argument.as_ref(), &members);
                        let name = alias.clone().unwrap_or_else(|| match argument {
                            Some(a) => format!("{function}({})", a.qualified_name()),
                            None => format!("{function}(*)"),
                        });
                        row.set(name, value);
                    }
                    SelectItem::Column { column, alias } => {
                        let value = members
                            .first()
                            .and_then(|m| {
                                m.get(&column.qualified_name()).or_else(|| m.get(&column.column))
                            })
                            .cloned()
                            .unwrap_or(Value::Null);
                        row.set(column.qualified_name(), value.clone());
                        if let Some(a) = alias {
                            row.set(a.clone(), value);
                        }
                    }
                    SelectItem::Wildcard => {
                        if let Some(first) = members.first() {
                            for (k, v) in first.iter() {
                                row.set(k.clone(), v.clone());
                            }
                        }
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// Helpers (free functions so they are easy to unit test)
// ----------------------------------------------------------------------

pub(crate) fn bind_conditions(
    conditions: &[Condition],
    params: &[Value],
) -> Result<Vec<BoundCondition>, QueryError> {
    conditions
        .iter()
        .map(|c| {
            let right = match &c.right {
                Expr::Column(col) => BoundOperand::Column(col.clone()),
                Expr::Literal(v) => BoundOperand::Value(v.clone()),
                Expr::Parameter(i) => BoundOperand::Value(
                    params
                        .get(*i)
                        .cloned()
                        .ok_or(QueryError::MissingParameter(*i))?,
                ),
            };
            Ok(BoundCondition {
                left: c.left.clone(),
                op: c.op,
                right,
            })
        })
        .collect()
}

pub(crate) fn bind_expr(expr: &Expr, params: &[Value]) -> Result<Value, QueryError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Parameter(i) => params
            .get(*i)
            .cloned()
            .ok_or(QueryError::MissingParameter(*i)),
        Expr::Column(c) => Err(QueryError::Unsupported(format!(
            "column reference {c} cannot be used as a scalar value here"
        ))),
    }
}

/// True if the condition only involves the given alias (its left column is a
/// column of `def` referenced through `alias` or unqualified-and-unambiguous)
/// and compares against a constant.
fn condition_is_single_alias(
    c: &BoundCondition,
    alias: &str,
    def: &TableDef,
    from: &[sql::TableRef],
) -> bool {
    if !matches!(c.right, BoundOperand::Value(_)) {
        return false;
    }
    column_belongs_to_alias(&c.left, alias, def, from)
}

fn column_belongs_to_alias(
    col: &ColumnRef,
    alias: &str,
    def: &TableDef,
    from: &[sql::TableRef],
) -> bool {
    match &col.qualifier {
        Some(q) => q == alias && def.column_type(&col.column).is_some(),
        // Unqualified: belongs to this alias when the column exists here and
        // this is the only FROM entry that declares it (TPC-W queries only
        // use unqualified names when they are unambiguous).
        None => def.column_type(&col.column).is_some() && from.len() == 1,
    }
}

/// The single-alias equality filters for an alias, as column → value.
fn single_alias_eq_filters(
    conditions: &[BoundCondition],
    alias: &str,
    def: &TableDef,
    from: &[sql::TableRef],
) -> BTreeMap<String, Value> {
    let mut out = BTreeMap::new();
    for c in conditions {
        if c.op == Comparison::Eq && condition_is_single_alias(c, alias, def, from) {
            if let BoundOperand::Value(v) = &c.right {
                out.insert(c.left.column.clone(), v.clone());
            }
        }
    }
    out
}

/// Columns of `alias` that the query needs (for covered-index decisions).
fn needed_columns(select: &SelectStatement, alias: &str, def: &TableDef) -> Vec<String> {
    let mut needed: Vec<String> = Vec::new();
    let mut add = |col: &ColumnRef| {
        let belongs = match &col.qualifier {
            Some(q) => q == alias,
            None => def.column_type(&col.column).is_some(),
        };
        if belongs && !needed.contains(&col.column) {
            needed.push(col.column.clone());
        }
    };
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                return def.column_names().iter().map(|s| s.to_string()).collect()
            }
            SelectItem::Column { column, .. } => add(column),
            SelectItem::Aggregate { argument, .. } => {
                if let Some(a) = argument {
                    add(a);
                }
            }
        }
    }
    for c in &select.conditions {
        add(&c.left);
        if let Expr::Column(col) = &c.right {
            add(col);
        }
    }
    for c in &select.group_by {
        add(c);
    }
    for k in &select.order_by {
        add(&k.column);
    }
    needed
}

/// Equi-join conditions connecting `alias` to any of `joined`.
fn join_conditions_between<'a>(
    conditions: &'a [BoundCondition],
    alias: &'a str,
    joined: &'a [String],
) -> impl Iterator<Item = &'a BoundCondition> {
    conditions.iter().filter(move |c| {
        if c.op != Comparison::Eq {
            return false;
        }
        let BoundOperand::Column(right) = &c.right else {
            return false;
        };
        let lq = c.left.qualifier.as_deref();
        let rq = right.qualifier.as_deref();
        match (lq, rq) {
            (Some(l), Some(r)) => {
                (l == alias && joined.iter().any(|j| j == r))
                    || (r == alias && joined.iter().any(|j| j == l))
            }
            _ => false,
        }
    })
}

/// The side of a join condition that belongs to `alias`.
fn join_column_for_alias<'a>(c: &'a BoundCondition, alias: &str) -> &'a ColumnRef {
    let BoundOperand::Column(right) = &c.right else {
        return &c.left;
    };
    if right.qualifier.as_deref() == Some(alias) {
        right
    } else {
        &c.left
    }
}

/// The side of a join condition that does *not* belong to `alias`.
fn join_column_other_side<'a>(c: &'a BoundCondition, alias: &str) -> &'a ColumnRef {
    let BoundOperand::Column(right) = &c.right else {
        return &c.left;
    };
    if right.qualifier.as_deref() == Some(alias) {
        &c.left
    } else {
        right
    }
}

/// Evaluates any bound condition against a joined row (used for residual
/// predicates).  Conditions whose columns are absent evaluate to true so that
/// filters already applied during the per-alias fetch are not re-applied
/// against rows that legitimately dropped reserved columns.
fn evaluate_condition(row: &Row, c: &BoundCondition) -> bool {
    let left = row
        .get(&c.left.qualified_name())
        .or_else(|| row.get(&c.left.column));
    let Some(left) = left else { return true };
    match &c.right {
        BoundOperand::Value(v) => c.op.evaluate(left, v),
        BoundOperand::Column(col) => {
            let right = row.get(&col.qualified_name()).or_else(|| row.get(&col.column));
            match right {
                Some(r) => c.op.evaluate(left, r),
                None => true,
            }
        }
    }
}

fn compute_aggregate(
    function: AggregateFunction,
    argument: Option<&ColumnRef>,
    members: &[Row],
) -> Value {
    let values: Vec<Value> = match argument {
        None => return Value::Int(members.len() as i64),
        Some(col) => members
            .iter()
            .filter_map(|m| {
                m.get(&col.qualified_name())
                    .or_else(|| m.get(&col.column))
                    .cloned()
            })
            .filter(|v| !v.is_null())
            .collect(),
    };
    match function {
        AggregateFunction::Count => Value::Int(values.len() as i64),
        AggregateFunction::Sum => {
            let sum: f64 = values.iter().filter_map(Value::as_float).sum();
            if values.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggregateFunction::Avg => {
            if values.is_empty() {
                Value::Null
            } else {
                let sum: f64 = values.iter().filter_map(Value::as_float).sum();
                Value::Float(sum / values.len() as f64)
            }
        }
        AggregateFunction::Min => values.iter().min().cloned().unwrap_or(Value::Null),
        AggregateFunction::Max => values.iter().max().cloned().unwrap_or(Value::Null),
    }
}

fn apply_order_by(select: &SelectStatement, mut rows: Vec<Row>) -> Vec<Row> {
    if select.order_by.is_empty() {
        return rows;
    }
    rows.sort_by(|a, b| {
        for key in &select.order_by {
            let av = a
                .get(&key.column.qualified_name())
                .or_else(|| a.get(&key.column.column))
                .cloned()
                .unwrap_or(Value::Null);
            let bv = b
                .get(&key.column.qualified_name())
                .or_else(|| b.get(&key.column.column))
                .cloned()
                .unwrap_or(Value::Null);
            let ord = av.cmp(&bv);
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

fn project(select: &SelectStatement, rows: Vec<Row>) -> Vec<Row> {
    let wildcard = select.items.iter().any(|i| matches!(i, SelectItem::Wildcard));
    if wildcard || select.has_aggregates() {
        return rows;
    }
    rows.into_iter()
        .map(|row| {
            let mut out = Row::new();
            for item in &select.items {
                if let SelectItem::Column { column, alias } = item {
                    let value = row
                        .get(&column.qualified_name())
                        .or_else(|| row.get(&column.column))
                        .cloned()
                        .unwrap_or(Value::Null);
                    let name = alias.clone().unwrap_or_else(|| column.qualified_name());
                    out.set(name, value);
                }
            }
            out
        })
        .collect()
}
