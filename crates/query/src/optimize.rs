//! The **optimizer**: rule passes that turn a [`BoundSelect`] into a
//! [`PhysicalPlan`].
//!
//! Each pass subsumes a planning decision the pre-IR executor made inline,
//! so planning a statement and executing the plan is behavior- and
//! cost-identical to the old single-shot path:
//!
//! 1. **Predicate pushdown** — every single-alias constant predicate is
//!    assigned to its alias's scan stream; equi-join predicates are
//!    consumed by the hash join that enforces them; whatever remains is a
//!    residual filter over joined rows.
//! 2. **Access-path selection** — per alias, from its equality-filter
//!    columns: full-key Get, key-prefix scan, covered/uncovered index
//!    scan, or full scan.
//! 3. **Join order** — the start (probe) alias is the one with the most
//!    selective access path, tie-broken by estimated cardinality from
//!    region stats ([`nosql_store::Cluster::table_stats`], fewer rows
//!    first); each following step joins the first remaining alias connected
//!    by an equi-join condition, with the join-key symbols resolved for
//!    both sides.
//! 4. **Projection pushdown** — the columns each alias must produce are
//!    computed once; the decode mask and the store-level scan projection
//!    derive from it.
//! 5. **Limit pushdown** — a bare single-table `LIMIT k` is pushed into the
//!    store scan; any other bare LIMIT stops pulling the pipeline early
//!    (and pins its sources to the serial streaming operators).
//! 6. **Operator parallelism** — at `threads > 1`, full scans fan out
//!    region-parallel, equi-joins hash-partition, and ORDER BY + LIMIT
//!    runs per-worker bounded heaps, unless a bare LIMIT's early
//!    termination forbids it.
//!
//! Statement-level rewrites (Synergy's materialized-view substitution)
//! happen *before* binding through [`crate::PlanRewriter`] and are recorded
//! on the plan as a [`LogicalPlan::Rewrite`] node, so `EXPLAIN` shows the
//! substitution instead of hiding it in a pre-pass.

use crate::bind::{
    self, column_mask, condition_is_single_alias, eq_filter_columns, join_column_for_alias,
    join_column_other_side, join_conditions_between, needed_columns, resolve_col, BoundSelect,
    PlannedCondition, PlannedOperand,
};
use crate::catalog::{Catalog, TableDef};
use crate::executor::{AccessPath, Executor};
use crate::physical::{
    AliasAccess, DecodeSpec, GroupPlan, IndexAccess, ItemPlan, JoinStep, PhysicalPlan,
};
use crate::plan::{LogicalPlan, PlanOperand, PlanPredicate, SortKey};
use crate::result::QueryError;
use relational::{intern, Symbol};
use sql::{SelectItem, SelectStatement};

/// A note describing a statement-level rewrite that fired before planning.
#[derive(Debug, Clone)]
pub struct RewriteNote {
    /// Rule identifier (e.g. `synergy-view-rewrite`).
    pub rule: String,
    /// Human-readable description of what was substituted.
    pub note: String,
}

/// Ranks an access path for start-alias selection (lower = more selective).
fn access_rank(path: &AccessPath) -> i32 {
    match path {
        AccessPath::KeyGet => 0,
        AccessPath::IndexScan { .. } => 1,
        AccessPath::KeyPrefixScan | AccessPath::KeyRangeScan => 2,
        AccessPath::FullScan => 3,
    }
}

/// Chooses how one alias will be accessed given the *columns* of its
/// single-alias equality filters plus whether its leading key attribute is
/// range-bounded from both sides (values are irrelevant to the choice,
/// which is what makes plans parameter-independent and cacheable).
fn select_access_path(
    catalog: &Catalog,
    def: &TableDef,
    eq_columns: &[String],
    key_range_bounded: bool,
) -> AccessPath {
    match choose_access(catalog, def, eq_columns, false) {
        // A both-sided range on `key[0]` beats walking the whole table:
        // the upquery shape (`... AND last.lead >= ? AND last.lead <= ?`)
        // plans as a bounded key scan instead of a full scan.
        AccessPath::FullScan if key_range_bounded => AccessPath::KeyRangeScan,
        path => path,
    }
}

/// Chooses the access path for a **delta-probe** lookup: how view
/// maintenance fetches the rows of one join side given equality bindings
/// for the join columns.  Identical to read-path access selection except
/// that maintenance-only indexes (invisible to read planning, see
/// [`Catalog::mark_maintenance_index`]) are eligible — they exist precisely
/// to turn these probes into index scans.
pub fn select_probe_access(catalog: &Catalog, def: &TableDef, eq_columns: &[String]) -> AccessPath {
    choose_access(catalog, def, eq_columns, true)
}

fn choose_access(
    catalog: &Catalog,
    def: &TableDef,
    eq_columns: &[String],
    allow_maintenance: bool,
) -> AccessPath {
    if !eq_columns.is_empty() {
        if def.key_covered_by(eq_columns) {
            return AccessPath::KeyGet;
        }
        if eq_columns.iter().any(|c| c == &def.key[0]) {
            return AccessPath::KeyPrefixScan;
        }
        for index in catalog.indexes_of(&def.name) {
            if !allow_maintenance && catalog.is_maintenance_index(&index.name) {
                continue;
            }
            if eq_columns.iter().any(|c| c == &index.key[0]) {
                return AccessPath::IndexScan {
                    index: index.name.clone(),
                };
            }
        }
    }
    AccessPath::FullScan
}

/// Compiles one bound SELECT into a physical plan at the executor's
/// configuration (thread count, catalog).  `rewrite` records a statement
/// rewrite that already fired, for the plan tree.
pub(crate) fn plan_select(
    executor: &Executor,
    bound: BoundSelect<'_>,
    rewrite: Option<RewriteNote>,
) -> Result<PhysicalPlan, QueryError> {
    let BoundSelect {
        select,
        aliases,
        conditions,
    } = bound;
    let catalog = executor.catalog();
    let threads = executor.threads();
    let n_aliases = aliases.len();

    // --- Rule 1: predicate pushdown (classification) -------------------
    // Track which conditions are fully enforced inside the pipeline:
    // every single-alias filter is applied on its alias's stream, and
    // every equi-join condition is enforced exactly by the hash join
    // that consumes it.  Whatever remains (cross-alias `<>`, range
    // predicates over joined columns, ...) is evaluated per joined row.
    let mut consumed = vec![false; conditions.len()];
    let mut single_alias: Vec<Vec<usize>> = vec![Vec::new(); n_aliases];
    for (ai, (alias, def)) in aliases.iter().enumerate() {
        for (i, c) in conditions.iter().enumerate() {
            if condition_is_single_alias(c, alias, def, &select.from) {
                consumed[i] = true;
                single_alias[ai].push(i);
            }
        }
    }

    // --- Rule 2: access-path selection ---------------------------------
    let eq_columns: Vec<Vec<String>> = (0..n_aliases)
        .map(|ai| eq_filter_columns(&conditions, &single_alias[ai]))
        .collect();
    let paths: Vec<AccessPath> = aliases
        .iter()
        .enumerate()
        .map(|(ai, (_, def))| {
            let key_range_bounded =
                bind::range_bounded_column(&conditions, &single_alias[ai], &def.key[0]);
            select_access_path(catalog, def, &eq_columns[ai], key_range_bounded)
        })
        .collect();

    // --- Rule 3: join order --------------------------------------------
    // Start with the alias that has the most selective access path; among
    // equal ranks, prefer the smaller estimated cardinality (region
    // stats), then statement order.  Then repeatedly add an alias
    // connected by a join condition.
    let mut start = 0;
    // Single-table statements have no join-order choice; skip the access
    // ranking and the region-stats walk entirely so the one-shot
    // point-lookup path pays nothing for them.
    if n_aliases > 1 {
        let mut best_rank = i32::MAX;
        let mut best_rows = u64::MAX;
        for (ai, (_, def)) in aliases.iter().enumerate() {
            let rank = access_rank(&paths[ai]);
            let rows = executor
                .cluster()
                .table_stats(&def.name)
                .map(|t| t.rows)
                .unwrap_or(u64::MAX);
            if rank < best_rank || (rank == best_rank && rows < best_rows) {
                best_rank = rank;
                best_rows = rows;
                start = ai;
            }
        }
    }

    let mut remaining: Vec<usize> = (0..n_aliases).collect();
    remaining.retain(|&i| i != start);
    let mut joined_aliases = vec![aliases[start].0.clone()];
    let mut join_steps: Vec<JoinStep> = Vec::new();
    while !remaining.is_empty() {
        // Find a remaining alias connected to what we have joined so far.
        let next_pos = remaining
            .iter()
            .position(|&i| {
                join_conditions_between(&conditions, &aliases[i].0, &joined_aliases)
                    .next()
                    .is_some()
            })
            .unwrap_or(0);
        let idx = remaining.remove(next_pos);
        let alias_name = aliases[idx].0.clone();
        let cond_idxs: Vec<usize> =
            join_conditions_between(&conditions, &alias_name, &joined_aliases)
                .map(|(i, _)| i)
                .collect();
        for &i in &cond_idxs {
            consumed[i] = true;
        }
        // Join-key symbols, resolved once per join instead of one
        // `format!("{alias}.{column}")` per row per condition.
        let right_syms: Vec<Symbol> = cond_idxs
            .iter()
            .map(|&i| {
                let col = join_column_for_alias(&conditions[i], &alias_name);
                intern::intern(&format!("{alias_name}.{}", col.column))
            })
            .collect();
        let left_syms: Vec<Symbol> = cond_idxs
            .iter()
            .map(|&i| resolve_col(join_column_other_side(&conditions[i], &alias_name)))
            .collect();
        joined_aliases.push(alias_name);
        // --- Rule 6 (joins): serial vs hash-partitioned ---------------
        let partitioned = threads > 1 && !limit_stops_early(select) && !cond_idxs.is_empty();
        join_steps.push(JoinStep {
            alias: idx,
            cond_idxs,
            left_syms,
            right_syms,
            partitioned,
        });
    }

    // Residual conditions: anything not consumed above.
    let residual: Vec<usize> = (0..conditions.len()).filter(|&i| !consumed[i]).collect();

    // --- Rule 5: limit pushdown ----------------------------------------
    let single_table = n_aliases == 1;
    let has_group = select.has_aggregates() || !select.group_by.is_empty();
    let lse = limit_stops_early(select);
    // Store-level LIMIT pushdown: safe only when no downstream operator
    // can drop or reorder rows, i.e. a bare single-table `LIMIT k`.
    // Every other shape still benefits from stream laziness (the source
    // stops being pulled after `k` output rows).
    let store_limit = if single_table
        && conditions.is_empty()
        && residual.is_empty()
        && select.order_by.is_empty()
        && !has_group
    {
        select.limit.unwrap_or(0)
    } else {
        0
    };

    // --- Rule 4: projection pushdown (per-alias decode specs) ----------
    let access: Vec<AliasAccess> = aliases
        .iter()
        .enumerate()
        .map(|(ai, (alias, def))| {
            let needed = needed_columns(select, alias, def);
            let qual_syms: Option<Vec<Symbol>> = (!single_table).then(|| {
                def.columns
                    .iter()
                    .map(|(name, _)| intern::intern(&format!("{alias}.{name}")))
                    .collect()
            });
            let decode = DecodeSpec {
                qual_syms,
                mask: column_mask(def, &needed),
            };
            let index = match &paths[ai] {
                AccessPath::IndexScan { index } => {
                    let index_def = catalog
                        .table_shared(index)
                        .ok_or_else(|| QueryError::UnknownTable(index.clone()))?;
                    let covered = needed
                        .as_ref()
                        .map(|needed| needed.iter().all(|c| index_def.column_type(c).is_some()))
                        .unwrap_or_else(|| {
                            def.columns
                                .iter()
                                .all(|(c, _)| index_def.column_type(c).is_some())
                        });
                    // The index table shares column names with the base
                    // table, so the same qualified-name scheme applies; its
                    // symbols are indexed by the *index* def's column order.
                    let index_qual_syms: Option<Vec<Symbol>> = (!single_table).then(|| {
                        index_def
                            .columns
                            .iter()
                            .map(|(name, _)| intern::intern(&format!("{alias}.{name}")))
                            .collect()
                    });
                    let index_decode = DecodeSpec {
                        qual_syms: index_qual_syms,
                        mask: column_mask(&index_def, &needed),
                    };
                    Some(IndexAccess {
                        def: index_def,
                        covered,
                        decode: index_decode,
                    })
                }
                _ => None,
            };
            Ok(AliasAccess {
                path: paths[ai].clone(),
                decode,
                index,
            })
        })
        .collect::<Result<_, QueryError>>()?;

    // Aggregate / projection / ordering sub-plans.
    let group = has_group.then(|| build_group_plan(select));
    let order_keys: Vec<(Symbol, bool)> = select
        .order_by
        .iter()
        .map(|key| (resolve_col(&key.column), key.descending))
        .collect();
    let project = build_project(select);

    // The logical plan mirrors every decision above for EXPLAIN.
    let logical = build_logical(
        select,
        &aliases,
        &conditions,
        &single_alias,
        &paths,
        start,
        &join_steps,
        &residual,
        store_limit,
        lse,
        threads,
        &group,
        &order_keys,
        &project,
        rewrite,
    );

    Ok(PhysicalPlan {
        aliases,
        conditions,
        single_alias,
        start,
        join_steps,
        residual,
        access,
        store_limit,
        limit_stops_early: lse,
        limit: select.limit,
        group,
        order_keys,
        project,
        threads,
        logical,
        catalog_version: catalog.version(),
    })
}

/// True when a bare LIMIT (no ORDER BY, no aggregation) stops pulling the
/// pipeline lazily after k output rows; parallel sources and the
/// partitioned join work in eager batches and would forfeit that early
/// termination, so such statements stay on the serial streaming operators.
fn limit_stops_early(select: &SelectStatement) -> bool {
    let has_group = select.has_aggregates() || !select.group_by.is_empty();
    select.limit.is_some() && select.order_by.is_empty() && !has_group
}

/// Resolves the aggregate/GROUP BY sub-plan (symbols interned once).
fn build_group_plan(select: &SelectStatement) -> GroupPlan {
    let group_syms: Vec<(Symbol, Symbol)> = select
        .group_by
        .iter()
        .map(|c| (resolve_col(c), intern::intern(&c.column)))
        .collect();
    let items: Vec<ItemPlan> = select
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Aggregate {
                function,
                argument,
                alias,
            } => {
                let name = alias.clone().unwrap_or_else(|| match argument {
                    Some(a) => format!("{function}({})", a.qualified_name()),
                    None => format!("{function}(*)"),
                });
                ItemPlan::Aggregate {
                    function: *function,
                    argument: argument.as_ref().map(resolve_col),
                    name: intern::intern(&name),
                }
            }
            SelectItem::Column { column, alias } => ItemPlan::Column {
                lookup: resolve_col(column),
                out: intern::intern(&column.qualified_name()),
                alias: alias.as_deref().map(intern::intern),
            },
            SelectItem::Wildcard => ItemPlan::Wildcard,
        })
        .collect();
    GroupPlan { group_syms, items }
}

/// Resolves the final projection (`None` = identity: wildcard present or
/// aggregate output, which `build_group_plan` already shapes).
fn build_project(select: &SelectStatement) -> Option<Vec<(Symbol, Symbol)>> {
    let wildcard = select.items.iter().any(|i| matches!(i, SelectItem::Wildcard));
    if wildcard || select.has_aggregates() {
        return None;
    }
    Some(
        select
            .items
            .iter()
            .filter_map(|item| {
                let SelectItem::Column { column, alias } = item else {
                    return None;
                };
                let out = match alias {
                    Some(a) => intern::intern(a),
                    None => intern::intern(&column.qualified_name()),
                };
                Some((resolve_col(column), out))
            })
            .collect(),
    )
}

/// Renders one planned condition as a plan predicate.
fn plan_predicate(c: &PlannedCondition) -> PlanPredicate {
    PlanPredicate {
        left: c.left_sym.clone(),
        op: c.op,
        right: match &c.right {
            PlannedOperand::Literal(v) => PlanOperand::Literal(v.clone()),
            PlannedOperand::Param(i) => PlanOperand::Param(*i),
            PlannedOperand::Column(_, sym) => PlanOperand::Column(sym.clone()),
        },
    }
}

/// Assembles the logical operator tree from the optimizer's decisions.
#[allow(clippy::too_many_arguments)]
fn build_logical(
    select: &SelectStatement,
    aliases: &[(String, std::sync::Arc<TableDef>)],
    conditions: &[PlannedCondition],
    single_alias: &[Vec<usize>],
    paths: &[AccessPath],
    start: usize,
    join_steps: &[JoinStep],
    residual: &[usize],
    store_limit: usize,
    limit_stops_early: bool,
    threads: usize,
    group: &Option<GroupPlan>,
    order_keys: &[(Symbol, bool)],
    project: &Option<Vec<(Symbol, Symbol)>>,
    rewrite: Option<RewriteNote>,
) -> LogicalPlan {
    let scan_node = |ai: usize, is_start: bool| -> LogicalPlan {
        let (alias, def) = &aliases[ai];
        // Mirrors the physical source choice: full scans fan out on the
        // pool unless a pushed store limit or a bare LIMIT downstream pins
        // the source to the serial cursor.
        let this_store_limit = if is_start { store_limit } else { 0 };
        let parallel = if matches!(paths[ai], AccessPath::FullScan)
            && threads > 1
            && this_store_limit == 0
            && !(is_start && limit_stops_early)
        {
            threads
        } else {
            1
        };
        LogicalPlan::Scan {
            table: def.name.clone(),
            alias: alias.clone(),
            access: paths[ai].clone(),
            predicates: single_alias[ai]
                .iter()
                .map(|&i| plan_predicate(&conditions[i]))
                .collect(),
            parallel,
            store_limit: this_store_limit,
        }
    };

    let mut node = scan_node(start, true);
    for step in join_steps {
        node = LogicalPlan::HashJoin {
            probe: Box::new(node),
            build: Box::new(scan_node(step.alias, false)),
            build_alias: aliases[step.alias].0.clone(),
            on: step
                .cond_idxs
                .iter()
                .map(|&i| plan_predicate(&conditions[i]))
                .collect(),
            partitioned: if step.partitioned { threads } else { 1 },
        };
    }
    if !residual.is_empty() {
        node = LogicalPlan::Filter {
            input: Box::new(node),
            predicates: residual.iter().map(|&i| plan_predicate(&conditions[i])).collect(),
        };
    }

    let sort_keys: Vec<SortKey> = order_keys
        .iter()
        .map(|(sym, desc)| SortKey {
            column: sym.clone(),
            descending: *desc,
        })
        .collect();

    if let Some(group) = group {
        node = LogicalPlan::Aggregate {
            input: Box::new(node),
            group_by: group.group_syms.iter().map(|(q, _)| q.clone()).collect(),
            items: select.items.clone(),
        };
        if !sort_keys.is_empty() {
            node = LogicalPlan::Sort {
                input: Box::new(node),
                keys: sort_keys,
            };
        }
        if let Some(k) = select.limit {
            node = LogicalPlan::Limit {
                input: Box::new(node),
                k,
                pushed_to_store: false,
            };
        }
    } else if !sort_keys.is_empty() {
        node = match select.limit {
            Some(k) => LogicalPlan::TopK {
                input: Box::new(node),
                k,
                keys: sort_keys,
                partitioned: if threads > 1 { threads } else { 1 },
            },
            None => LogicalPlan::Sort {
                input: Box::new(node),
                keys: sort_keys,
            },
        };
    } else if let Some(k) = select.limit {
        node = LogicalPlan::Limit {
            input: Box::new(node),
            k,
            pushed_to_store: store_limit > 0,
        };
    }

    if let Some(cols) = project {
        node = LogicalPlan::Project {
            input: Box::new(node),
            columns: cols.iter().map(|(_, out)| out.clone()).collect(),
        };
    }

    match rewrite {
        Some(RewriteNote { rule, note }) => LogicalPlan::Rewrite {
            rule,
            note,
            input: Box::new(node),
        },
        None => node,
    }
}

/// Convenience used by `Executor::plan_select` and the session: bind then
/// optimize in one call.
pub(crate) fn bind_and_plan(
    executor: &Executor,
    select: &SelectStatement,
    rewrite: Option<RewriteNote>,
) -> Result<PhysicalPlan, QueryError> {
    let bound = bind::bind_select(executor.catalog(), select)?;
    plan_select(executor, bound, rewrite)
}
