//! Query results and errors.

use relational::Row;
use std::fmt;

/// The result of executing one SQL statement.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Result rows (empty for write statements).
    pub rows: Vec<Row>,
    /// Number of rows affected by a write statement.
    pub rows_affected: usize,
    /// Peak number of rows the streaming executor held materialized at once
    /// while producing this result (hash-join build sides, aggregation
    /// input, sort / top-k buffers and the emitted rows).  `0` for writes.
    pub peak_rows_resident: usize,
    /// Number of times this result was produced by falling back to the
    /// baseline (view-free) plan because the view-rewritten plan kept
    /// observing dirty markers.  `0` on the normal path; Synergy's graceful
    /// degradation under faults sets it (see the bench `fig_faults`).
    pub dirty_fallbacks: usize,
}

/// Equality compares the logical result only; `peak_rows_resident` and
/// `dirty_fallbacks` are execution instrumentation, not part of the answer.
impl PartialEq for QueryResult {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.rows_affected == other.rows_affected
    }
}

impl QueryResult {
    /// A result carrying rows from a SELECT.
    pub fn with_rows(rows: Vec<Row>) -> Self {
        QueryResult {
            rows,
            rows_affected: 0,
            peak_rows_resident: 0,
            dirty_fallbacks: 0,
        }
    }

    /// Attaches the executor's peak-rows-resident measurement.
    pub fn with_peak_rows_resident(mut self, peak: usize) -> Self {
        self.peak_rows_resident = peak;
        self
    }

    /// A result for a write affecting `n` rows.
    pub fn affected(n: usize) -> Self {
        QueryResult {
            rows: Vec::new(),
            rows_affected: n,
            peak_rows_resident: 0,
            dirty_fallbacks: 0,
        }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result carries no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Errors raised while planning or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The statement referenced a table the catalog does not know.
    UnknownTable(String),
    /// The statement referenced a column not present in any bound table.
    UnknownColumn(String),
    /// A `?` parameter had no bound value.
    MissingParameter(usize),
    /// The statement shape is not supported by this engine.
    Unsupported(String),
    /// A write statement did not specify every key attribute.
    IncompleteKey {
        /// The table being written.
        table: String,
        /// The missing key attribute.
        missing: String,
    },
    /// The underlying store failed.  Carries the structured
    /// [`nosql_store::StoreError`] so callers can inspect
    /// [`nosql_store::StoreError::retryable`] and walk the `source()` chain
    /// (e.g. down to the fault a retry policy exhausted on).
    Store(nosql_store::StoreError),
    /// A concurrent-update marker forced too many scan restarts.
    DirtyReadRetriesExhausted,
    /// Internal: a streamed scan observed a dirty row; the executor restarts
    /// the statement (callers only ever see
    /// [`QueryError::DirtyReadRetriesExhausted`]).
    DirtyRestart,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTable(t) => write!(f, "unknown table {t}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            QueryError::MissingParameter(i) => write!(f, "no value bound for parameter {i}"),
            QueryError::Unsupported(s) => write!(f, "unsupported statement: {s}"),
            QueryError::IncompleteKey { table, missing } => {
                write!(f, "write to {table} does not specify key attribute {missing}")
            }
            QueryError::Store(s) => write!(f, "store error: {s}"),
            QueryError::DirtyReadRetriesExhausted => {
                write!(f, "scan kept observing dirty rows; retries exhausted")
            }
            QueryError::DirtyRestart => {
                write!(f, "internal: streamed scan observed a dirty row; restarting")
            }
        }
    }
}

impl std::error::Error for QueryError {
    /// Exposes the store error as the source, so a `Box<dyn Error>` chain
    /// walks `QueryError → StoreError → (RetriesExhausted's last fault)`.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nosql_store::StoreError> for QueryError {
    fn from(e: nosql_store::StoreError) -> Self {
        QueryError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = QueryResult::with_rows(vec![Row::new().with("a", 1)]);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        let w = QueryResult::affected(3);
        assert_eq!(w.rows_affected, 3);
        assert!(w.is_empty());
    }

    #[test]
    fn store_errors_chain_their_source() {
        use std::error::Error;
        let store = nosql_store::StoreError::RetriesExhausted {
            attempts: 4,
            last: Box::new(nosql_store::StoreError::RpcTimeout { server: 0 }),
        };
        let err = QueryError::from(store);
        // QueryError → StoreError::RetriesExhausted → RpcTimeout.
        let source = err.source().expect("store source");
        let root = source.source().expect("fault source");
        assert!(root.to_string().contains("timed out"), "{root}");
    }

    #[test]
    fn errors_display() {
        assert!(QueryError::UnknownTable("t".into()).to_string().contains('t'));
        assert!(QueryError::IncompleteKey {
            table: "Orders".into(),
            missing: "o_id".into()
        }
        .to_string()
        .contains("o_id"));
    }
}
