//! Incremental (**delta**) evaluation of [`LogicalPlan`]s, the engine behind
//! Synergy's view maintenance, plus the coalescing write buffer.
//!
//! A base-table write is represented as signed row-deltas — an insert is
//! `+row`, a delete is `-row` (the before-image), an update is the pair
//! `[-old, +new]` — and a [`DeltaPlan`] pushes those deltas through the
//! view's defining [`LogicalPlan`] *incrementally*:
//!
//! * `Scan` admits deltas of its own relation (after its pushed-down
//!   filters) and nothing else;
//! * `HashJoin` looks up the **other** side's current rows for each delta,
//!   using the same access-path machinery as read planning
//!   ([`select_probe_access`](crate::select_probe_access)) — a point Get
//!   when the join key is the probed table's primary key, a key-prefix or
//!   (maintenance-)index scan otherwise — and emits the joined deltas;
//! * `Filter` passes or drops deltas; `Project` rewrites them onto the
//!   output columns;
//! * `Aggregate` folds deltas into per-group net contributions and emits
//!   `[-old group row, +new group row]` against the materialized state
//!   (invertible aggregates only: `COUNT` and `SUM`).
//!
//! The work a write causes is therefore proportional to the delta and the
//! rows it joins with — never to the size of the view — which is the
//! Noria-style dataflow argument for incremental view maintenance, reusing
//! the planner IR as the dataflow graph instead of a second engine.
//!
//! [`DeltaBuffer`] is the companion write batch: a bounded buffer that
//! coalesces consecutive writes to the same base key (last-write-wins per
//! column, insert+delete annihilation) so a burst against one hot key does
//! bounded maintenance work when flushed.

use crate::catalog::{Catalog, TableDef};
use crate::executor::{AccessPath, Executor};
use crate::optimize::select_probe_access;
use crate::plan::{LogicalPlan, PlanOperand, PlanPredicate};
use crate::result::QueryError;
use nosql_store::ops::Scan;
use relational::{Row, Value, KEY_DELIMITER};
use sql::{AggregateFunction, Comparison, SelectItem};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The sign of a row-delta: `Plus` adds the row, `Minus` retracts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaSign {
    /// The row is being added.
    Plus,
    /// The row is being retracted.
    Minus,
}

/// One signed row-delta flowing through a [`DeltaPlan`].
#[derive(Debug, Clone)]
pub struct RowDelta {
    /// Whether the row is added or retracted.
    pub sign: DeltaSign,
    /// The row (for `Minus`, the before-image).
    pub row: Row,
}

impl RowDelta {
    /// A `+row` delta (insert, or the new image of an update).
    pub fn plus(row: Row) -> RowDelta {
        RowDelta {
            sign: DeltaSign::Plus,
            row,
        }
    }

    /// A `-row` delta (delete, or the old image of an update).
    pub fn minus(row: Row) -> RowDelta {
        RowDelta {
            sign: DeltaSign::Minus,
            row,
        }
    }
}

/// A compiled pushed-down predicate: bare column, operator, literal.
#[derive(Debug, Clone)]
struct DeltaPredicate {
    column: String,
    op: Comparison,
    value: Value,
}

impl std::fmt::Display for DeltaPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

/// One invertible aggregate of a delta-plan `Aggregate` node.
#[derive(Debug, Clone)]
struct AggItem {
    function: AggregateFunction,
    argument: Option<String>,
    /// Output column name in the materialized state (alias or rendered form).
    name: String,
}

/// One node of the incremental operator tree (mirrors [`LogicalPlan`]).
#[derive(Debug, Clone)]
enum DeltaNode {
    Scan {
        def: Arc<TableDef>,
        predicates: Vec<DeltaPredicate>,
    },
    Join {
        left: Box<DeltaNode>,
        right: Box<DeltaNode>,
        /// Equi-join column pairs as `(left column, right column)`, bare.
        on: Vec<(String, String)>,
        /// Bare columns produced by the left subtree (routes lookups).
        left_cols: BTreeSet<String>,
        /// How the left side is probed given its join columns (rendered).
        left_probe: (String, AccessPath),
        /// How the right side is probed given its join columns (rendered).
        right_probe: (String, AccessPath),
    },
    Filter {
        input: Box<DeltaNode>,
        predicates: Vec<DeltaPredicate>,
    },
    Project {
        input: Box<DeltaNode>,
        columns: Vec<String>,
    },
    Aggregate {
        input: Box<DeltaNode>,
        group_by: Vec<String>,
        items: Vec<AggItem>,
    },
}

/// The compiled incremental form of one view-defining [`LogicalPlan`].
///
/// Compiled once per view (see the maintenance engine's cache) and stamped
/// with the catalog version, so — exactly like the plan cache — a catalog
/// mutation lazily invalidates it.
#[derive(Debug, Clone)]
pub struct DeltaPlan {
    root: DeltaNode,
    catalog_version: u64,
    /// Table holding the plan's materialized output; required by
    /// incremental `Aggregate` nodes (they read the current group rows).
    state_table: Option<String>,
}

impl DeltaPlan {
    /// Compiles a logical plan into its incremental form.
    ///
    /// Fails with [`QueryError::Unsupported`] on operators with no
    /// incremental interpretation (ordering, limits, non-equi joins,
    /// parameters, and the non-invertible aggregates `AVG`/`MIN`/`MAX`).
    pub fn compile(catalog: &Catalog, plan: &LogicalPlan) -> Result<DeltaPlan, QueryError> {
        let mut aliases = BTreeSet::new();
        collect_aliases(plan, &mut aliases);
        Ok(DeltaPlan {
            root: compile_node(catalog, plan, &aliases)?,
            catalog_version: catalog.version(),
            state_table: None,
        })
    }

    /// Sets the table incremental aggregates read their current group rows
    /// from (the view's own materialization).
    pub fn with_state_table(mut self, table: impl Into<String>) -> DeltaPlan {
        self.state_table = Some(table.into());
        self
    }

    /// The catalog version this plan was compiled against (caches treat a
    /// mismatch as stale, like [`crate::Session`]'s plan cache).
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// True when the plan reads `relation` (deltas of other relations are
    /// no-ops by construction).
    pub fn touches(&self, relation: &str) -> bool {
        self.root.contains_table(relation)
    }

    /// Pushes base-table deltas of `relation` through the plan and returns
    /// the resulting output-row deltas.
    pub fn propagate(
        &self,
        executor: &Executor,
        relation: &str,
        deltas: &[RowDelta],
    ) -> Result<Vec<RowDelta>, QueryError> {
        self.root
            .delta(executor, self.state_table.as_deref(), relation, deltas)
    }

    /// Renders the stable, indented delta-operator tree (the EXPLAIN-style
    /// text pinned by golden snapshots): one operator per line, children
    /// indented two spaces, trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, 0);
        out
    }
}

// ----------------------------------------------------------------------
// Compilation
// ----------------------------------------------------------------------

fn collect_aliases(plan: &LogicalPlan, out: &mut BTreeSet<String>) {
    match plan {
        LogicalPlan::Scan { alias, .. } => {
            out.insert(alias.clone());
        }
        LogicalPlan::HashJoin { probe, build, .. } => {
            collect_aliases(probe, out);
            collect_aliases(build, out);
        }
        LogicalPlan::Rewrite { input, .. }
        | LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::TopK { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Project { input, .. } => collect_aliases(input, out),
    }
}

/// Strips a leading `alias.` qualifier (schema attribute names are globally
/// unique, and stored view rows use bare names).
fn bare(name: &str, aliases: &BTreeSet<String>) -> String {
    if let Some((prefix, rest)) = name.split_once('.') {
        if aliases.contains(prefix) {
            return rest.to_string();
        }
    }
    name.to_string()
}

fn unsupported(what: impl std::fmt::Display) -> QueryError {
    QueryError::Unsupported(format!("{what} has no incremental (delta) interpretation"))
}

fn compile_predicate(
    p: &PlanPredicate,
    aliases: &BTreeSet<String>,
) -> Result<DeltaPredicate, QueryError> {
    let value = match &p.right {
        PlanOperand::Literal(v) => v.clone(),
        PlanOperand::Param(_) => return Err(unsupported("a parameterized predicate")),
        PlanOperand::Column(_) => return Err(unsupported("a column-column filter")),
    };
    Ok(DeltaPredicate {
        column: bare(p.left.name(), aliases),
        op: p.op,
        value,
    })
}

fn compile_node(
    catalog: &Catalog,
    plan: &LogicalPlan,
    aliases: &BTreeSet<String>,
) -> Result<DeltaNode, QueryError> {
    match plan {
        // A rewrite note is planning provenance; deltas flow through it.
        LogicalPlan::Rewrite { input, .. } => compile_node(catalog, input, aliases),
        LogicalPlan::Scan {
            table, predicates, ..
        } => {
            let def = catalog
                .table_shared_ci(table)
                .ok_or_else(|| QueryError::UnknownTable(table.clone()))?;
            let predicates = predicates
                .iter()
                .map(|p| compile_predicate(p, aliases))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(DeltaNode::Scan { def, predicates })
        }
        LogicalPlan::HashJoin {
            probe, build, on, ..
        } => {
            let left = compile_node(catalog, probe, aliases)?;
            let right = compile_node(catalog, build, aliases)?;
            let left_cols = left.column_set();
            let mut pairs = Vec::new();
            for p in on {
                if p.op != Comparison::Eq {
                    return Err(unsupported("a non-equi join"));
                }
                let PlanOperand::Column(rsym) = &p.right else {
                    return Err(unsupported("a join on a non-column operand"));
                };
                let a = bare(p.left.name(), aliases);
                let b = bare(rsym.name(), aliases);
                let (lc, rc) = if left_cols.contains(&a) { (a, b) } else { (b, a) };
                pairs.push((lc, rc));
            }
            let left_on: Vec<String> = pairs.iter().map(|(l, _)| l.clone()).collect();
            let right_on: Vec<String> = pairs.iter().map(|(_, r)| r.clone()).collect();
            let left_probe = left.probe_spec(catalog, &left_on);
            let right_probe = right.probe_spec(catalog, &right_on);
            Ok(DeltaNode::Join {
                left: Box::new(left),
                right: Box::new(right),
                on: pairs,
                left_cols,
                left_probe,
                right_probe,
            })
        }
        LogicalPlan::Filter { input, predicates } => Ok(DeltaNode::Filter {
            input: Box::new(compile_node(catalog, input, aliases)?),
            predicates: predicates
                .iter()
                .map(|p| compile_predicate(p, aliases))
                .collect::<Result<Vec<_>, _>>()?,
        }),
        LogicalPlan::Project { input, columns } => Ok(DeltaNode::Project {
            input: Box::new(compile_node(catalog, input, aliases)?),
            columns: columns.iter().map(|s| bare(s.name(), aliases)).collect(),
        }),
        LogicalPlan::Aggregate {
            input,
            group_by,
            items,
        } => {
            let group_by: Vec<String> =
                group_by.iter().map(|s| bare(s.name(), aliases)).collect();
            let mut agg_items = Vec::new();
            for item in items {
                match item {
                    SelectItem::Aggregate {
                        function,
                        argument,
                        alias,
                    } => {
                        match function {
                            AggregateFunction::Count | AggregateFunction::Sum => {}
                            other => {
                                return Err(unsupported(format_args!(
                                    "the non-invertible aggregate {other:?}"
                                )))
                            }
                        }
                        agg_items.push(AggItem {
                            function: *function,
                            argument: argument.as_ref().map(|c| c.column.clone()),
                            name: alias.clone().unwrap_or_else(|| item.to_string()),
                        });
                    }
                    // Plain group-by columns are carried by the group key.
                    SelectItem::Column { .. } => {}
                    SelectItem::Wildcard => {
                        return Err(unsupported("a wildcard over an aggregate"))
                    }
                }
            }
            Ok(DeltaNode::Aggregate {
                input: Box::new(compile_node(catalog, input, aliases)?),
                group_by,
                items: agg_items,
            })
        }
        LogicalPlan::Sort { .. } | LogicalPlan::TopK { .. } | LogicalPlan::Limit { .. } => {
            Err(unsupported("ordering or a limit"))
        }
    }
}

// ----------------------------------------------------------------------
// Incremental evaluation
// ----------------------------------------------------------------------

/// Equality constraints binding a lookup: `(bare column, value)` pairs.
type Constraints = [(String, Value)];

fn predicates_pass(predicates: &[DeltaPredicate], row: &Row) -> bool {
    predicates.iter().all(|p| match row.get(&p.column) {
        Some(v) => p.op.evaluate(v, &p.value),
        None => false,
    })
}

fn row_matches(row: &Row, constraints: &Constraints) -> bool {
    constraints
        .iter()
        .all(|(c, v)| row.get(c).is_some_and(|rv| rv == v))
}

/// Builds the other side's lookup constraints from one row's join-column
/// values; `None` when any value is absent or null (SQL join semantics:
/// null never matches).
fn bind_constraints(
    row: &Row,
    my_cols: impl Iterator<Item = impl AsRef<str>>,
    other_cols: impl Iterator<Item = impl AsRef<str>>,
) -> Option<Vec<(String, Value)>> {
    let mut out = Vec::new();
    for (mine, other) in my_cols.zip(other_cols) {
        let value = row.get(mine.as_ref())?;
        if value.is_null() {
            return None;
        }
        out.push((other.as_ref().to_string(), value.clone()));
    }
    Some(out)
}

/// Merges a looked-up row into a delta row.  Shared attributes (the join
/// columns) are equal by construction, so the delta row's values win.
fn merge_rows(base: &Row, other: &Row) -> Row {
    let mut out = base.clone();
    for (attr, value) in other.iter() {
        if out.get(attr).is_none() {
            out.set(attr, value.clone());
        }
    }
    out
}

fn constraint_row(constraints: &Constraints) -> Row {
    let mut row = Row::with_capacity(constraints.len());
    for (c, v) in constraints {
        row.set(c.clone(), v.clone());
    }
    row
}

impl DeltaNode {
    fn column_set(&self) -> BTreeSet<String> {
        match self {
            DeltaNode::Scan { def, .. } => {
                def.columns.iter().map(|(name, _)| name.clone()).collect()
            }
            DeltaNode::Join { left, right, .. } => {
                let mut cols = left.column_set();
                cols.extend(right.column_set());
                cols
            }
            DeltaNode::Filter { input, .. } => input.column_set(),
            DeltaNode::Project { columns, .. } => columns.iter().cloned().collect(),
            DeltaNode::Aggregate {
                group_by, items, ..
            } => group_by
                .iter()
                .cloned()
                .chain(items.iter().map(|i| i.name.clone()))
                .collect(),
        }
    }

    fn contains_table(&self, relation: &str) -> bool {
        match self {
            DeltaNode::Scan { def, .. } => def.name.eq_ignore_ascii_case(relation),
            DeltaNode::Join { left, right, .. } => {
                left.contains_table(relation) || right.contains_table(relation)
            }
            DeltaNode::Filter { input, .. }
            | DeltaNode::Project { input, .. }
            | DeltaNode::Aggregate { input, .. } => input.contains_table(relation),
        }
    }

    /// How this subtree is looked up given equality bindings for `cols`:
    /// the leaf table that owns the columns and the access path its probe
    /// will use.  Decided at compile time so the rendered plan documents it.
    fn probe_spec(&self, catalog: &Catalog, cols: &[String]) -> (String, AccessPath) {
        match self {
            DeltaNode::Scan { def, .. } => {
                (def.name.clone(), select_probe_access(catalog, def, cols))
            }
            DeltaNode::Join { left, right, .. } => {
                let left_cols = left.column_set();
                if cols.iter().all(|c| left_cols.contains(c)) {
                    left.probe_spec(catalog, cols)
                } else {
                    right.probe_spec(catalog, cols)
                }
            }
            DeltaNode::Filter { input, .. }
            | DeltaNode::Project { input, .. }
            | DeltaNode::Aggregate { input, .. } => input.probe_spec(catalog, cols),
        }
    }

    /// Pushes `deltas` of `relation` through this subtree.
    fn delta(
        &self,
        executor: &Executor,
        state: Option<&str>,
        relation: &str,
        deltas: &[RowDelta],
    ) -> Result<Vec<RowDelta>, QueryError> {
        match self {
            DeltaNode::Scan { def, predicates } => {
                if !def.name.eq_ignore_ascii_case(relation) {
                    return Ok(Vec::new());
                }
                Ok(deltas
                    .iter()
                    .filter(|d| predicates_pass(predicates, &d.row))
                    .cloned()
                    .collect())
            }
            DeltaNode::Join {
                left, right, on, ..
            } => {
                let left_side = left.contains_table(relation);
                if !left_side && !right.contains_table(relation) {
                    return Ok(Vec::new());
                }
                let (side, other) = if left_side {
                    (left, right)
                } else {
                    (right, left)
                };
                let inner = side.delta(executor, state, relation, deltas)?;
                let mut out = Vec::new();
                for d in inner {
                    let constraints = if left_side {
                        bind_constraints(
                            &d.row,
                            on.iter().map(|(l, _)| l),
                            on.iter().map(|(_, r)| r),
                        )
                    } else {
                        bind_constraints(
                            &d.row,
                            on.iter().map(|(_, r)| r),
                            on.iter().map(|(l, _)| l),
                        )
                    };
                    let Some(constraints) = constraints else { continue };
                    for matched in other.lookup(executor, &constraints)? {
                        out.push(RowDelta {
                            sign: d.sign,
                            row: merge_rows(&d.row, &matched),
                        });
                    }
                }
                Ok(out)
            }
            DeltaNode::Filter { input, predicates } => {
                let mut inner = input.delta(executor, state, relation, deltas)?;
                inner.retain(|d| predicates_pass(predicates, &d.row));
                Ok(inner)
            }
            DeltaNode::Project { input, columns } => {
                let inner = input.delta(executor, state, relation, deltas)?;
                Ok(inner
                    .into_iter()
                    .map(|d| RowDelta {
                        sign: d.sign,
                        row: project_row(&d.row, columns),
                    })
                    .collect())
            }
            DeltaNode::Aggregate {
                input,
                group_by,
                items,
            } => {
                let inner = input.delta(executor, state, relation, deltas)?;
                aggregate_delta(executor, state, group_by, items, &inner)
            }
        }
    }

    /// Evaluates this subtree under equality bindings — the read half of a
    /// join probe.  Leaf scans pick their access path from the bound
    /// columns; joins look up the side owning the columns first and probe
    /// the other side per resulting row.
    fn lookup(
        &self,
        executor: &Executor,
        constraints: &Constraints,
    ) -> Result<Vec<Row>, QueryError> {
        match self {
            DeltaNode::Scan { def, predicates } => {
                scan_lookup(executor, def, predicates, constraints)
            }
            DeltaNode::Join {
                left,
                right,
                on,
                left_cols,
                ..
            } => {
                let left_side = constraints.iter().all(|(c, _)| left_cols.contains(c));
                let (side, other) = if left_side {
                    (left, right)
                } else {
                    (right, left)
                };
                let rows = side.lookup(executor, constraints)?;
                let mut out = Vec::new();
                for row in rows {
                    let next = if left_side {
                        bind_constraints(
                            &row,
                            on.iter().map(|(l, _)| l),
                            on.iter().map(|(_, r)| r),
                        )
                    } else {
                        bind_constraints(
                            &row,
                            on.iter().map(|(_, r)| r),
                            on.iter().map(|(l, _)| l),
                        )
                    };
                    let Some(next) = next else { continue };
                    for matched in other.lookup(executor, &next)? {
                        out.push(merge_rows(&row, &matched));
                    }
                }
                Ok(out)
            }
            DeltaNode::Filter { input, predicates } => {
                let mut rows = input.lookup(executor, constraints)?;
                rows.retain(|r| predicates_pass(predicates, r));
                Ok(rows)
            }
            DeltaNode::Project { input, columns } => Ok(input
                .lookup(executor, constraints)?
                .into_iter()
                .map(|r| project_row(&r, columns))
                .collect()),
            DeltaNode::Aggregate { .. } => Err(unsupported("a lookup through an aggregate")),
        }
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            DeltaNode::Scan { def, predicates } => {
                out.push_str(&format!("DeltaScan {}", def.name));
                if !predicates.is_empty() {
                    out.push_str(&format!(" filter=[{}]", join_display(predicates)));
                }
                out.push('\n');
            }
            DeltaNode::Join {
                left,
                right,
                on,
                left_probe,
                right_probe,
                ..
            } => {
                let on_text = on
                    .iter()
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "DeltaJoin on [{on_text}] probe({})={} probe({})={}\n",
                    left_probe.0,
                    access_label(&left_probe.1),
                    right_probe.0,
                    access_label(&right_probe.1),
                ));
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
            DeltaNode::Filter { input, predicates } => {
                out.push_str(&format!("DeltaFilter [{}]\n", join_display(predicates)));
                input.render_into(out, depth + 1);
            }
            DeltaNode::Project { input, columns } => {
                out.push_str(&format!("DeltaProject [{}]\n", columns.join(", ")));
                input.render_into(out, depth + 1);
            }
            DeltaNode::Aggregate {
                input,
                group_by,
                items,
            } => {
                out.push_str("DeltaAggregate");
                if !group_by.is_empty() {
                    out.push_str(&format!(" group_by=[{}]", group_by.join(", ")));
                }
                let items_text = items
                    .iter()
                    .map(|i| i.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(" items=[{items_text}]\n"));
                input.render_into(out, depth + 1);
            }
        }
    }
}

fn access_label(access: &AccessPath) -> String {
    match access {
        AccessPath::KeyGet => "get".to_string(),
        AccessPath::KeyPrefixScan => "key-prefix".to_string(),
        AccessPath::KeyRangeScan => "key-range".to_string(),
        AccessPath::IndexScan { index } => format!("index:{index}"),
        AccessPath::FullScan => "full".to_string(),
    }
}

fn join_display<T: std::fmt::Display>(items: &[T]) -> String {
    items
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn project_row(row: &Row, columns: &[String]) -> Row {
    let mut out = Row::with_capacity(columns.len());
    for c in columns {
        if let Some(v) = row.get(c) {
            out.set(c.clone(), v.clone());
        }
    }
    out
}

/// Fetches the current rows of one base table matching equality constraints,
/// choosing the cheapest access path the constraints admit (maintenance
/// indexes included).  Every fetch is a normally charged store operation.
fn scan_lookup(
    executor: &Executor,
    def: &TableDef,
    predicates: &[DeltaPredicate],
    constraints: &Constraints,
) -> Result<Vec<Row>, QueryError> {
    let cols: Vec<String> = constraints.iter().map(|(c, _)| c.clone()).collect();
    let rows = match select_probe_access(executor.catalog(), def, &cols) {
        AccessPath::KeyGet => executor
            .get_row_by_key(&def.name, &constraint_row(constraints))?
            .into_iter()
            .collect(),
        AccessPath::KeyPrefixScan => prefix_rows(executor, def, constraints)?,
        AccessPath::IndexScan { index } => {
            let index_def = executor
                .catalog()
                .table_shared_ci(&index)
                .ok_or_else(|| QueryError::UnknownTable(index.clone()))?;
            // Index tables are covered (they store every base column), so
            // the decoded index rows are the base rows.
            prefix_rows(executor, &index_def, constraints)?
        }
        // Probe access is chosen from equality constraints only, so a
        // range path never fires here; it falls through to the full walk.
        AccessPath::FullScan | AccessPath::KeyRangeScan => {
            let cursor = executor
                .cluster()
                .scan_stream(&def.name, executor.bounded_scan(Scan::all()))?;
            cursor.map(|stored| def.decode_row(&stored)).collect()
        }
    };
    Ok(rows
        .into_iter()
        .filter(|r| row_matches(r, constraints) && predicates_pass(predicates, r))
        .collect())
}

/// Prefix-scans `def` over the leading key columns bound by `constraints`.
fn prefix_rows(
    executor: &Executor,
    def: &TableDef,
    constraints: &Constraints,
) -> Result<Vec<Row>, QueryError> {
    let key_row = constraint_row(constraints);
    let n_bound = def
        .key
        .iter()
        .take_while(|k| key_row.contains(k))
        .count();
    let mut prefix = def.encode_key_prefix(&key_row, n_bound);
    if n_bound < def.key.len() {
        // Close the last bound component so "42" does not match "420".
        prefix.push(KEY_DELIMITER);
    }
    let cursor = executor
        .cluster()
        .scan_stream(&def.name, executor.bounded_scan(Scan::prefix(prefix)))?;
    Ok(cursor.map(|stored| def.decode_row(&stored)).collect())
}

/// Applies input deltas to the materialized aggregate state: per group,
/// read the current group row, fold the net contributions in, and emit
/// `[-old, +new]` (dropping the group when a `COUNT(*)` reaches zero).
fn aggregate_delta(
    executor: &Executor,
    state: Option<&str>,
    group_by: &[String],
    items: &[AggItem],
    deltas: &[RowDelta],
) -> Result<Vec<RowDelta>, QueryError> {
    let Some(state_table) = state else {
        return Err(QueryError::Unsupported(
            "an incremental aggregate needs a state table (DeltaPlan::with_state_table)".into(),
        ));
    };
    // Net contribution per group: membership count plus per-item (count,
    // sum, saw-float) folds, keyed by the encoded group values.
    use std::collections::BTreeMap;
    struct GroupFold {
        key_row: Row,
        members: i64,
        item_counts: Vec<i64>,
        item_sums: Vec<f64>,
        item_floats: Vec<bool>,
    }
    let mut groups: BTreeMap<String, GroupFold> = BTreeMap::new();
    for d in deltas {
        let mut key_row = Row::with_capacity(group_by.len());
        let mut key_text = String::new();
        for g in group_by {
            let v = d.row.get(g).cloned().unwrap_or(Value::Null);
            key_text.push_str(&v.encode());
            key_text.push(KEY_DELIMITER);
            key_row.set(g.clone(), v);
        }
        let fold = groups.entry(key_text).or_insert_with(|| GroupFold {
            key_row,
            members: 0,
            item_counts: vec![0; items.len()],
            item_sums: vec![0.0; items.len()],
            item_floats: vec![false; items.len()],
        });
        let unit = match d.sign {
            DeltaSign::Plus => 1,
            DeltaSign::Minus => -1,
        };
        fold.members += unit;
        for (i, item) in items.iter().enumerate() {
            let arg = match &item.argument {
                Some(col) => {
                    let Some(v) = d.row.get(col) else { continue };
                    if v.is_null() {
                        continue;
                    }
                    Some(v)
                }
                None => None,
            };
            fold.item_counts[i] += unit;
            if let Some(v) = arg {
                if let Some(f) = v.as_float() {
                    fold.item_sums[i] += f64::from(unit as i32) * f;
                }
                if matches!(v, Value::Float(_)) {
                    fold.item_floats[i] = true;
                }
            }
        }
    }

    let mut out = Vec::new();
    for fold in groups.into_values() {
        let old = executor.get_row_by_key(state_table, &fold.key_row)?;
        let mut new_row = fold.key_row.clone();
        let mut members_after = fold.members;
        for (i, item) in items.iter().enumerate() {
            let old_value = old.as_ref().and_then(|r| r.get(&item.name)).cloned();
            let value = match item.function {
                AggregateFunction::Count => {
                    let before = old_value.and_then(|v| v.as_int()).unwrap_or(0);
                    let after = before + fold.item_counts[i];
                    if item.argument.is_none() {
                        members_after = after;
                    }
                    Value::Int(after)
                }
                AggregateFunction::Sum => {
                    let before = old_value.clone().and_then(|v| v.as_float()).unwrap_or(0.0);
                    let after = before + fold.item_sums[i];
                    let float = fold.item_floats[i]
                        || matches!(old_value, Some(Value::Float(_)));
                    if float {
                        Value::Float(after)
                    } else {
                        Value::Int(after as i64)
                    }
                }
                // lint-allow(panic-freedom): compile() filters these aggregates out above
                _ => unreachable!("compile rejects non-invertible aggregates"),
            };
            new_row.set(item.name.clone(), value);
        }
        let had_state = old.is_some();
        if let Some(old_row) = old {
            out.push(RowDelta::minus(old_row));
        } else if fold.members <= 0 {
            // Retractions against a group that was never materialized.
            continue;
        }
        if members_after > 0 || (!had_state && fold.members > 0) {
            out.push(RowDelta::plus(new_row));
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// The coalescing write batch
// ----------------------------------------------------------------------

/// One buffered base-table write awaiting delta propagation.
#[derive(Debug, Clone)]
pub enum PendingWrite {
    /// A new row.
    Insert(Row),
    /// A deleted row (the before-image).
    Delete(Row),
    /// An updated row: before- and after-images.
    Update {
        /// The row as it was before the (first coalesced) update.
        before: Row,
        /// The row as it is after the (last coalesced) update.
        after: Row,
    },
}

impl PendingWrite {
    /// The signed deltas this write propagates as.
    pub fn deltas(&self) -> Vec<RowDelta> {
        match self {
            PendingWrite::Insert(row) => vec![RowDelta::plus(row.clone())],
            PendingWrite::Delete(row) => vec![RowDelta::minus(row.clone())],
            PendingWrite::Update { before, after } => vec![
                RowDelta::minus(before.clone()),
                RowDelta::plus(after.clone()),
            ],
        }
    }
}

/// A bounded buffer of pending writes that **coalesces** consecutive writes
/// to the same `(relation, base key)` before delta propagation:
///
/// * insert then delete **annihilate** (the views never see the row);
/// * delete then insert become one update (`before` = deleted image);
/// * repeated updates keep the first `before` and overlay the `after`s
///   **last-write-wins per column**;
/// * an update (or insert) following an insert folds into the insert.
///
/// A burst of writes against one hot key therefore flushes as at most one
/// propagated write.  Capacity 1 degenerates to flush-per-write (no
/// batching); the buffer never applies anything itself — the maintenance
/// engine drains it.
#[derive(Debug)]
pub struct DeltaBuffer {
    capacity: usize,
    entries: Vec<((String, String), PendingWrite)>,
    merges: u64,
}

impl DeltaBuffer {
    /// Creates a buffer holding up to `capacity` distinct keys (min 1).
    pub fn new(capacity: usize) -> DeltaBuffer {
        DeltaBuffer {
            capacity: capacity.max(1),
            entries: Vec::new(),
            merges: 0,
        }
    }

    /// The configured capacity (distinct buffered keys before a flush is
    /// due).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered (coalesced) writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when the buffer has reached capacity and must be flushed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// How many writes were merged away by coalescing so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Records one write, coalescing it into an existing entry for the same
    /// `(relation, key)` when present.
    pub fn record(&mut self, relation: &str, key: String, write: PendingWrite) {
        let entry_key = (relation.to_ascii_lowercase(), key);
        let Some(idx) = self.entries.iter().position(|(k, _)| *k == entry_key) else {
            self.entries.push((entry_key, write));
            return;
        };
        self.merges += 1;
        let merged = match (&self.entries[idx].1, write) {
            (PendingWrite::Insert(a), PendingWrite::Insert(b)) => {
                Some(PendingWrite::Insert(overlay(a, &b)))
            }
            (PendingWrite::Insert(a), PendingWrite::Update { after, .. }) => {
                Some(PendingWrite::Insert(overlay(a, &after)))
            }
            (PendingWrite::Insert(_), PendingWrite::Delete(_)) => None,
            (PendingWrite::Update { before, after }, PendingWrite::Update { after: b, .. }) => {
                Some(PendingWrite::Update {
                    before: before.clone(),
                    after: overlay(after, &b),
                })
            }
            (PendingWrite::Update { before, after }, PendingWrite::Insert(b)) => {
                Some(PendingWrite::Update {
                    before: before.clone(),
                    after: overlay(after, &b),
                })
            }
            (PendingWrite::Update { before, .. }, PendingWrite::Delete(_)) => {
                Some(PendingWrite::Delete(before.clone()))
            }
            (PendingWrite::Delete(d), PendingWrite::Insert(b)) => Some(PendingWrite::Update {
                before: d.clone(),
                after: b,
            }),
            (PendingWrite::Delete(d), PendingWrite::Update { after, .. }) => {
                Some(PendingWrite::Update {
                    before: d.clone(),
                    after,
                })
            }
            (PendingWrite::Delete(d), PendingWrite::Delete(_)) => {
                Some(PendingWrite::Delete(d.clone()))
            }
        };
        match merged {
            Some(write) => self.entries[idx].1 = write,
            None => {
                self.entries.remove(idx);
            }
        }
    }

    /// Takes every buffered write, in first-recorded order, as
    /// `(relation, write)` pairs.
    pub fn drain(&mut self) -> Vec<(String, PendingWrite)> {
        std::mem::take(&mut self.entries)
            .into_iter()
            .map(|((relation, _), write)| (relation, write))
            .collect()
    }
}

/// `base` with every attribute of `patch` overwritten onto it
/// (last-write-wins per column).
fn overlay(base: &Row, patch: &Row) -> Row {
    let mut out = base.clone();
    for (attr, value) in patch.iter() {
        out.set(attr, value.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnType, TableKind};
    use nosql_store::{Cluster, ClusterConfig};
    use relational::Value;

    fn table(name: &str, columns: &[(&str, ColumnType)], key: &[&str], kind: TableKind) -> TableDef {
        TableDef::new(
            name,
            columns
                .iter()
                .map(|(n, t)| (n.to_string(), *t))
                .collect(),
            key.iter().map(|k| k.to_string()).collect(),
            kind,
        )
    }

    /// Two relations A ←fk— B, with a maintenance index on B's fk.
    fn join_fixture() -> Executor {
        let mut catalog = Catalog::new();
        catalog.add_table(table(
            "A",
            &[("a_id", ColumnType::Int), ("a_v", ColumnType::Str)],
            &["a_id"],
            TableKind::Base,
        ));
        catalog.add_table(table(
            "B",
            &[
                ("b_id", ColumnType::Int),
                ("b_a_id", ColumnType::Int),
                ("b_v", ColumnType::Int),
            ],
            &["b_id"],
            TableKind::Base,
        ));
        catalog.add_table(table(
            "MI_B__b_a_id",
            &[
                ("b_a_id", ColumnType::Int),
                ("b_id", ColumnType::Int),
                ("b_v", ColumnType::Int),
            ],
            &["b_a_id", "b_id"],
            TableKind::Index { of: "B".into() },
        ));
        catalog.mark_maintenance_index("MI_B__b_a_id");
        let cluster = Cluster::new(ClusterConfig::default());
        for def in catalog.tables() {
            cluster
                .create_table(
                    nosql_store::TableSchema::new(&def.name).with_family(crate::catalog::FAMILY),
                )
                .unwrap();
        }
        let executor = Executor::new(cluster, catalog);
        executor
            .insert_row("A", Row::new().set("a_id", 1).set("a_v", "one"))
            .unwrap();
        executor
            .insert_row("A", Row::new().set("a_id", 2).set("a_v", "two"))
            .unwrap();
        for (b_id, b_a_id, b_v) in [(10, 1, 100), (11, 1, 110), (20, 2, 200)] {
            executor
                .insert_row(
                    "B",
                    Row::new().set("b_id", b_id).set("b_a_id", b_a_id).set("b_v", b_v),
                )
                .unwrap();
        }
        executor
    }

    fn join_plan(executor: &Executor) -> DeltaPlan {
        let select = match sql::parse_statement("SELECT * FROM A, B WHERE A.a_id = B.b_a_id")
            .unwrap()
        {
            sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let physical = executor.plan_select(&select).unwrap();
        DeltaPlan::compile(executor.catalog(), physical.logical()).unwrap()
    }

    #[test]
    fn join_delta_probes_the_other_side_and_merges() {
        let executor = join_fixture();
        let plan = join_plan(&executor);
        assert!(plan.touches("A") && plan.touches("b") && !plan.touches("C"));

        // +B row joins up to its parent A row.
        let b = Row::new()
            .set("b_id", 12)
            .set("b_a_id", 1)
            .set("b_v", 120)
            .clone();
        let out = plan.propagate(&executor, "B", &[RowDelta::plus(b)]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sign, DeltaSign::Plus);
        assert_eq!(out[0].row.get("a_v"), Some(&Value::str("one")));
        assert_eq!(out[0].row.get("b_v"), Some(&Value::Int(120)));

        // -A row fans out to every child B row (two of them for a_id=1).
        let a = Row::new().set("a_id", 1).set("a_v", "one").clone();
        let out = plan
            .propagate(&executor, "A", &[RowDelta::minus(a)])
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.sign == DeltaSign::Minus));
        let mut b_ids: Vec<i64> = out
            .iter()
            .map(|d| d.row.get("b_id").unwrap().as_int().unwrap())
            .collect();
        b_ids.sort_unstable();
        assert_eq!(b_ids, vec![10, 11]);
    }

    #[test]
    fn dangling_foreign_keys_produce_no_deltas() {
        let executor = join_fixture();
        let plan = join_plan(&executor);
        let orphan = Row::new()
            .set("b_id", 30)
            .set("b_a_id", 99)
            .set("b_v", 300)
            .clone();
        let out = plan
            .propagate(&executor, "B", &[RowDelta::plus(orphan)])
            .unwrap();
        assert!(out.is_empty());
        let nullfk = Row::new().set("b_id", 31).set("b_v", 310).clone();
        let out = plan
            .propagate(&executor, "B", &[RowDelta::plus(nullfk)])
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn render_documents_probe_access_paths() {
        let executor = join_fixture();
        let plan = join_plan(&executor);
        let text = plan.render();
        // Parent probed by primary key, child through the maintenance index
        // (whichever side is the probe side, both labels must appear).
        assert!(text.contains("DeltaJoin on [a_id = b_a_id]"), "{text}");
        assert!(text.contains("probe(A)=get"), "{text}");
        assert!(text.contains("probe(B)=index:MI_B__b_a_id"), "{text}");
        assert!(text.contains("DeltaScan A"), "{text}");
        assert!(text.contains("DeltaScan B"), "{text}");
    }

    #[test]
    fn maintenance_index_is_invisible_to_read_planning() {
        let executor = join_fixture();
        let select =
            match sql::parse_statement("SELECT * FROM B WHERE b_a_id = 1").unwrap() {
                sql::Statement::Select(s) => s,
                _ => unreachable!(),
            };
        let text = executor.plan_select(&select).unwrap().explain();
        assert!(
            text.contains("access=full"),
            "read planning must not use the maintenance index: {text}"
        );
        // The delta probe, by contrast, uses it.
        let def = executor.catalog().table("B").unwrap();
        let access =
            select_probe_access(executor.catalog(), def, &["b_a_id".to_string()]);
        assert_eq!(
            access,
            AccessPath::IndexScan {
                index: "MI_B__b_a_id".into()
            }
        );
    }

    #[test]
    fn aggregate_deltas_update_group_state_invertibly() {
        let mut catalog = Catalog::new();
        catalog.add_table(table(
            "T",
            &[
                ("t_id", ColumnType::Int),
                ("g", ColumnType::Int),
                ("v", ColumnType::Int),
            ],
            &["t_id"],
            TableKind::Base,
        ));
        catalog.add_table(table(
            "V_agg",
            &[
                ("g", ColumnType::Int),
                ("n", ColumnType::Int),
                ("s", ColumnType::Int),
            ],
            &["g"],
            TableKind::View,
        ));
        let cluster = Cluster::new(ClusterConfig::default());
        for def in catalog.tables() {
            cluster
                .create_table(
                    nosql_store::TableSchema::new(&def.name).with_family(crate::catalog::FAMILY),
                )
                .unwrap();
        }
        let executor = Executor::new(cluster, catalog);
        let select = match sql::parse_statement(
            "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM T GROUP BY g",
        )
        .unwrap()
        {
            sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let physical = executor.plan_select(&select).unwrap();
        let plan = DeltaPlan::compile(executor.catalog(), physical.logical())
            .unwrap()
            .with_state_table("V_agg");

        // First insert creates the group.
        let r1 = Row::new().set("t_id", 1).set("g", 7).set("v", 5).clone();
        let out = plan.propagate(&executor, "T", &[RowDelta::plus(r1.clone())]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sign, DeltaSign::Plus);
        assert_eq!(out[0].row.get("n"), Some(&Value::Int(1)));
        assert_eq!(out[0].row.get("s"), Some(&Value::Int(5)));
        executor.insert_row("V_agg", &out[0].row).unwrap();

        // Second insert emits -old, +new with folded values.
        let r2 = Row::new().set("t_id", 2).set("g", 7).set("v", 3).clone();
        let out = plan.propagate(&executor, "T", &[RowDelta::plus(r2)]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].sign, DeltaSign::Minus);
        assert_eq!(out[1].row.get("n"), Some(&Value::Int(2)));
        assert_eq!(out[1].row.get("s"), Some(&Value::Int(8)));
        executor.delete_row_by_key("V_agg", &out[0].row).unwrap();
        executor.insert_row("V_agg", &out[1].row).unwrap();

        // Retracting both members empties the group: -old only.
        let r2 = Row::new().set("t_id", 2).set("g", 7).set("v", 3).clone();
        let out = plan
            .propagate(
                &executor,
                "T",
                &[RowDelta::minus(r1), RowDelta::minus(r2)],
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sign, DeltaSign::Minus);
    }

    #[test]
    fn non_invertible_aggregates_and_limits_fail_to_compile() {
        let executor = join_fixture();
        for sql_text in [
            "SELECT b_a_id, MIN(b_v) AS m FROM B GROUP BY b_a_id",
            "SELECT * FROM B LIMIT 5",
        ] {
            let select = match sql::parse_statement(sql_text).unwrap() {
                sql::Statement::Select(s) => s,
                _ => unreachable!(),
            };
            let physical = executor.plan_select(&select).unwrap();
            let err = DeltaPlan::compile(executor.catalog(), physical.logical());
            assert!(err.is_err(), "{sql_text} must not compile incrementally");
        }
    }

    fn row(pairs: &[(&str, i64)]) -> Row {
        let mut r = Row::new();
        for (k, v) in pairs {
            r.set(*k, *v);
        }
        r
    }

    #[test]
    fn buffer_coalesces_insert_delete_to_nothing() {
        let mut buf = DeltaBuffer::new(16);
        buf.record("B", "k1".into(), PendingWrite::Insert(row(&[("b_id", 1)])));
        buf.record("B", "k1".into(), PendingWrite::Delete(row(&[("b_id", 1)])));
        assert!(buf.is_empty());
        assert_eq!(buf.merges(), 1);
    }

    #[test]
    fn buffer_coalesces_updates_last_write_wins_per_column() {
        let mut buf = DeltaBuffer::new(16);
        buf.record(
            "B",
            "k1".into(),
            PendingWrite::Update {
                before: row(&[("b_id", 1), ("x", 1), ("y", 1)]),
                after: row(&[("b_id", 1), ("x", 2), ("y", 1)]),
            },
        );
        buf.record(
            "B",
            "k1".into(),
            PendingWrite::Update {
                before: row(&[("b_id", 1), ("x", 2), ("y", 1)]),
                after: row(&[("b_id", 1), ("x", 2), ("y", 9)]),
            },
        );
        assert_eq!(buf.len(), 1);
        let drained = buf.drain();
        let PendingWrite::Update { before, after } = &drained[0].1 else {
            panic!("expected coalesced update");
        };
        // First before-image, last after-image, per column.
        assert_eq!(before.get("x"), Some(&Value::Int(1)));
        assert_eq!(after.get("x"), Some(&Value::Int(2)));
        assert_eq!(after.get("y"), Some(&Value::Int(9)));
    }

    #[test]
    fn buffer_turns_delete_then_insert_into_an_update() {
        let mut buf = DeltaBuffer::new(16);
        buf.record("B", "k1".into(), PendingWrite::Delete(row(&[("b_id", 1), ("x", 1)])));
        buf.record("B", "k1".into(), PendingWrite::Insert(row(&[("b_id", 1), ("x", 5)])));
        let drained = buf.drain();
        let PendingWrite::Update { before, after } = &drained[0].1 else {
            panic!("expected update");
        };
        assert_eq!(before.get("x"), Some(&Value::Int(1)));
        assert_eq!(after.get("x"), Some(&Value::Int(5)));
    }

    #[test]
    fn buffer_keeps_distinct_keys_in_arrival_order() {
        let mut buf = DeltaBuffer::new(2);
        assert!(!buf.is_full());
        buf.record("B", "k1".into(), PendingWrite::Insert(row(&[("b_id", 1)])));
        buf.record("A", "k1".into(), PendingWrite::Insert(row(&[("a_id", 1)])));
        assert!(buf.is_full());
        let drained = buf.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, "b");
        assert_eq!(drained[1].0, "a");
        assert!(buf.is_empty());
    }
}
