//! The baseline relational → NoSQL transformation (paper §II-D).
//!
//! * **Schema**: every relation `R` becomes a NoSQL table `R'` with the same
//!   attributes, row key = delimited concatenation of `PK(R)`, all attributes
//!   in a single column family.  Every index `X(R)` becomes a table keyed on
//!   `X_tuple(R) ++ PK(R)`.
//! * **Workload**: every read statement is kept; a write statement is kept
//!   only if it specifies every key attribute of its target relation in the
//!   WHERE clause (single-row writes).

use crate::catalog::{Catalog, ColumnType, TableDef, TableKind};
use crate::result::QueryError;
use nosql_store::{Cluster, TableSchema};
use relational::{Relation, Schema};
use sql::Statement;

/// How column types are assigned when building a catalog from a relational
/// schema.  The relational model is untyped, so callers provide a typing
/// function; [`ColumnType::Str`] is used when it returns `None`.
pub type TypeHint<'a> = &'a dyn Fn(&str, &str) -> Option<ColumnType>;

/// Builds the baseline catalog with all columns typed as strings.
pub fn baseline_catalog(schema: &Schema) -> Catalog {
    baseline_catalog_with_types(schema, &|_, _| None)
}

/// Builds the baseline catalog, consulting `types(relation, column)` for
/// column types.
pub fn baseline_catalog_with_types(schema: &Schema, types: TypeHint<'_>) -> Catalog {
    let mut catalog = Catalog::new();
    for relation in &schema.relations {
        catalog.add_table(relation_table_def(relation, types));
    }
    for index in &schema.indexes {
        let relation = schema
            .relation(&index.relation)
            // lint-allow(panic-freedom): schema validation rejects dangling index refs at load
            .expect("index references a known relation");
        let mut columns: Vec<(String, ColumnType)> = Vec::new();
        for column in &index.covered {
            columns.push((
                column.clone(),
                types(&relation.name, column).unwrap_or_default(),
            ));
        }
        // The index key may include PK attributes that are not in the covered
        // set; make sure they are columns too.
        let key = index.key_attributes(relation);
        for k in &key {
            if !columns.iter().any(|(c, _)| c == k) {
                columns.push((k.clone(), types(&relation.name, k).unwrap_or_default()));
            }
        }
        catalog.add_table(TableDef::new(
            index.name.clone(),
            columns,
            key,
            TableKind::Index {
                of: relation.name.clone(),
            },
        ));
    }
    catalog
}

fn relation_table_def(relation: &Relation, types: TypeHint<'_>) -> TableDef {
    let columns = relation
        .attributes
        .iter()
        .map(|a| (a.clone(), types(&relation.name, a).unwrap_or_default()))
        .collect();
    TableDef::new(
        relation.name.clone(),
        columns,
        relation.primary_key.clone(),
        TableKind::Base,
    )
}

/// Creates the physical NoSQL table for every table in the catalog.
pub fn create_tables(cluster: &Cluster, catalog: &Catalog) -> Result<(), QueryError> {
    for def in catalog.tables() {
        if crate::writes::is_physical_kind(&def.kind) && !cluster.table_exists(&def.name) {
            cluster.create_table(TableSchema::new(def.name.clone()).with_family(super::catalog::FAMILY))?;
        }
    }
    Ok(())
}

/// The baseline workload transformation: keeps every read statement and every
/// write statement that specifies all key attributes of its target relation.
/// Returns the kept statements and the ones that were excluded.
pub fn baseline_workload(
    schema: &Schema,
    workload: &[Statement],
) -> (Vec<Statement>, Vec<Statement>) {
    let catalog = baseline_catalog(schema);
    let mut kept = Vec::new();
    let mut excluded = Vec::new();
    for statement in workload {
        if statement.is_read() {
            kept.push(statement.clone());
            continue;
        }
        let supported = match statement {
            Statement::Insert(insert) => catalog
                .table_ci(&insert.table)
                .map(|def| {
                    def.key
                        .iter()
                        .all(|k| insert.columns.iter().any(|c| c == k))
                })
                .unwrap_or(false),
            Statement::Update(update) => catalog
                .table_ci(&update.table)
                .map(|def| write_specifies_key(def, &update.conditions))
                .unwrap_or(false),
            Statement::Delete(delete) => catalog
                .table_ci(&delete.table)
                .map(|def| write_specifies_key(def, &delete.conditions))
                .unwrap_or(false),
            Statement::Select(_) => true,
        };
        if supported {
            kept.push(statement.clone());
        } else {
            excluded.push(statement.clone());
        }
    }
    (kept, excluded)
}

fn write_specifies_key(def: &TableDef, conditions: &[sql::Condition]) -> bool {
    def.key.iter().all(|k| {
        conditions
            .iter()
            .any(|c| c.op == sql::Comparison::Eq && c.is_filter() && c.left.column == *k)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::company;
    use sql::parse_statement;

    #[test]
    fn baseline_catalog_mirrors_schema() {
        let schema = company::company_schema();
        let catalog = baseline_catalog(&schema);
        // 7 relations + 2 indexes.
        assert_eq!(catalog.len(), 9);
        let works_on = catalog.table("Works_On").unwrap();
        assert_eq!(works_on.key, vec!["WO_EID", "WO_PNo"]);
        assert_eq!(works_on.kind, TableKind::Base);
        let index = catalog.table("employee_by_dno").unwrap();
        assert_eq!(index.key, vec!["E_DNo", "EID"]);
        assert!(matches!(index.kind, TableKind::Index { .. }));
    }

    #[test]
    fn type_hints_are_applied() {
        let schema = company::company_schema();
        let catalog = baseline_catalog_with_types(&schema, &|relation, column| {
            (relation == "Employee" && column == "EID").then_some(ColumnType::Int)
        });
        let employee = catalog.table("Employee").unwrap();
        assert_eq!(employee.column_type("EID"), Some(ColumnType::Int));
        assert_eq!(employee.column_type("EName"), Some(ColumnType::Str));
    }

    #[test]
    fn workload_transformation_drops_multi_row_writes() {
        let schema = company::company_schema();
        let workload = vec![
            parse_statement("SELECT * FROM Employee WHERE EID = ?").unwrap(),
            parse_statement("DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?").unwrap(),
            // Affects multiple rows (only part of the composite key) — must be
            // excluded, like the shopping-cart-line DELETE in the paper.
            parse_statement("DELETE FROM Works_On WHERE WO_EID = ?").unwrap(),
            parse_statement("UPDATE Employee SET EName = ? WHERE EID = ?").unwrap(),
            parse_statement("UPDATE Employee SET EName = ? WHERE EName = ?").unwrap(),
            parse_statement("INSERT INTO Department (DNo, DName) VALUES (?, ?)").unwrap(),
            parse_statement("INSERT INTO Department (DName) VALUES (?)").unwrap(),
        ];
        let (kept, excluded) = baseline_workload(&schema, &workload);
        assert_eq!(kept.len(), 4);
        assert_eq!(excluded.len(), 3);
    }

    #[test]
    fn create_tables_is_idempotent() {
        let schema = company::company_schema();
        let catalog = baseline_catalog(&schema);
        let cluster = Cluster::new(nosql_store::ClusterConfig::default());
        create_tables(&cluster, &catalog).unwrap();
        create_tables(&cluster, &catalog).unwrap();
        assert_eq!(cluster.list_tables().len(), 9);
    }
}
