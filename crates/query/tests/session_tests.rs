//! Integration tests of the [`Session`] API: prepared statements, the plan
//! cache (hit/miss/invalidation counters), catalog-change invalidation, and
//! `EXPLAIN` handling.

use nosql_store::{Cluster, ClusterConfig};
use query::{baseline, ColumnType, Executor, QueryError, Session, TableDef, TableKind};
use relational::{Relation, Row, Schema, Value};
use std::error::Error;

fn schema() -> Schema {
    Schema::new()
        .with_relation(
            Relation::new("Customer")
                .attributes(["c_id", "c_name", "c_group"])
                .primary_key(["c_id"])
                .build(),
        )
        .with_relation(
            Relation::new("Orders")
                .attributes(["o_id", "o_c_id", "o_total"])
                .primary_key(["o_id"])
                .foreign_key("o_c_id", "Customer", "c_id")
                .build(),
        )
}

fn build_executor() -> Executor {
    let schema = schema();
    let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| match column {
        "c_id" | "o_id" | "o_c_id" | "o_total" => Some(ColumnType::Int),
        _ => Some(ColumnType::Str),
    });
    let cluster = Cluster::new(ClusterConfig::default());
    baseline::create_tables(&cluster, &catalog).unwrap();
    let exec = Executor::new(cluster, catalog);
    for c_id in 1..=10i64 {
        exec.insert_row(
            "Customer",
            &Row::new()
                .with("c_id", c_id)
                .with("c_name", format!("C{c_id}"))
                .with("c_group", format!("g{}", c_id % 3)),
        )
        .unwrap();
    }
    exec
}

#[test]
fn prepared_statement_reexecutes_with_fresh_params() {
    let session = Session::new(build_executor());
    let stmt = session.prepare("SELECT c_name FROM Customer WHERE c_id = ?").unwrap();
    let one = stmt.execute(&[Value::Int(1)]).unwrap();
    let two = stmt.execute(&[Value::Int(2)]).unwrap();
    assert_eq!(one.rows[0].get("c_name").unwrap(), &Value::str("C1"));
    assert_eq!(two.rows[0].get("c_name").unwrap(), &Value::str("C2"));
    // Parameters are validated per execution, not at prepare time.
    assert!(matches!(stmt.execute(&[]), Err(QueryError::MissingParameter(0))));
}

#[test]
fn plan_cache_counts_hits_misses_and_entries() {
    let session = Session::new(build_executor());
    session.execute_sql("SELECT * FROM Customer", &[]).unwrap();
    session.execute_sql("SELECT * FROM Customer", &[]).unwrap();
    session.execute_sql("SELECT * FROM Customer WHERE c_id = 1", &[]).unwrap();
    let stats = session.plan_cache_stats();
    assert_eq!(stats.misses, 2, "two distinct statements compiled");
    assert_eq!(stats.hits, 1, "repeat served from cache");
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.invalidations, 0);

    // prepare_uncached never reads or populates the cache.
    session.prepare_uncached("SELECT * FROM Customer").unwrap();
    let after = session.plan_cache_stats();
    assert_eq!((after.hits, after.misses), (stats.hits, stats.misses));
}

#[test]
fn catalog_change_invalidates_cached_plans() {
    let mut session = Session::new(build_executor());
    let sql = "SELECT c_id, c_group FROM Customer WHERE c_group = 'g1'";
    let before = session.execute_sql(sql, &[]).unwrap();
    assert_eq!(session.plan_cache_stats().misses, 1);

    // DDL: add a covered index on the filtered column; the cached full-scan
    // plan is stale and must be re-planned against the new catalog.
    let mut catalog = session.executor().catalog().clone();
    let index = TableDef::new(
        "Customer_by_group",
        vec![
            ("c_group".to_string(), ColumnType::Str),
            ("c_id".to_string(), ColumnType::Int),
        ],
        vec!["c_group".to_string(), "c_id".to_string()],
        TableKind::Index {
            of: "Customer".to_string(),
        },
    );
    session
        .executor()
        .cluster()
        .create_table(nosql_store::TableSchema::new("Customer_by_group").with_family("cf"))
        .unwrap();
    catalog.add_table(index.clone());
    session.executor_mut().set_catalog(catalog);
    // Populate the index so the re-planned access path finds the rows.
    for c_id in 1..=10i64 {
        let row = Row::new()
            .with("c_id", c_id)
            .with("c_group", format!("g{}", c_id % 3));
        session
            .executor()
            .cluster()
            .put("Customer_by_group", index.row_to_put(&row))
            .unwrap();
    }

    let after = session.execute_sql(sql, &[]).unwrap();
    let stats = session.plan_cache_stats();
    assert_eq!(stats.invalidations, 1, "stale plan detected via catalog version");
    assert_eq!(stats.misses, 2, "statement re-planned");
    assert_eq!(before.rows, after.rows, "same answer through the new plan");
    // The re-planned statement now uses the index.
    let explain = session.explain(sql).unwrap();
    assert!(
        explain.contains("index:Customer_by_group"),
        "re-planned access path must use the new index:\n{explain}"
    );
}

#[test]
fn explain_via_sql_returns_plan_rows() {
    let session = Session::new(build_executor());
    let result = session
        .execute_sql("EXPLAIN SELECT * FROM Customer WHERE c_id = ?", &[])
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    let line = result.rows[0].get("plan").unwrap();
    assert_eq!(line, &Value::str("Scan Customer access=get filter=[c_id = ?0]"));

    // Join plans render one operator per line, children indented.
    let join = session
        .execute_sql(
            "EXPLAIN SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id",
            &[],
        )
        .unwrap();
    let lines: Vec<String> = join
        .rows
        .iter()
        .map(|r| r.get("plan").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].starts_with("HashJoin on [c.c_id = o.o_c_id]"));
    assert!(lines[1].starts_with("  Scan "));
    assert!(lines[2].starts_with("  Scan "));
}

#[test]
fn write_statements_prepare_and_execute_through_the_session() {
    let session = Session::new(build_executor());
    let insert = session
        .prepare("INSERT INTO Customer (c_id, c_name, c_group) VALUES (?, ?, ?)")
        .unwrap();
    insert
        .execute(&[Value::Int(99), Value::str("New"), Value::str("g9")])
        .unwrap();
    let read = session
        .execute_sql("SELECT c_name FROM Customer WHERE c_id = 99", &[])
        .unwrap();
    assert_eq!(read.rows[0].get("c_name").unwrap(), &Value::str("New"));
    assert_eq!(insert.explain().unwrap(), "Insert Customer\n");
}

/// Satellite: `QueryError` travels through `Box<dyn Error>` via `?` and
/// exposes a useful `Display`.
#[test]
fn query_error_is_a_std_error() {
    fn run() -> Result<(), Box<dyn Error>> {
        let session = Session::new(build_executor());
        session.execute_sql("SELECT * FROM Nonexistent", &[])?;
        Ok(())
    }
    let err = run().unwrap_err();
    assert_eq!(err.to_string(), "unknown table Nonexistent");
}

/// A toy rewriter that rewrites every SELECT to `LIMIT 1`, for isolation
/// tests (the real rule — Synergy's view substitution — lives upstream).
struct LimitOneRewriter;

impl query::PlanRewriter for LimitOneRewriter {
    fn rule_name(&self) -> &str {
        "limit-one"
    }

    fn rewrite_select(
        &self,
        select: &sql::SelectStatement,
    ) -> Option<(sql::SelectStatement, String)> {
        let mut rewritten = select.clone();
        rewritten.limit = Some(1);
        Some((rewritten, "forced LIMIT 1".to_string()))
    }
}

#[test]
fn with_rewriter_does_not_share_the_ancestor_plan_cache() {
    let plain = Session::new(build_executor());
    let sql = "SELECT * FROM Customer";
    // Warm the plain session's cache with the un-rewritten plan.
    assert_eq!(plain.execute_sql(sql, &[]).unwrap().len(), 10);

    // A rewriting clone must not serve (or poison) the ancestor's cache.
    let rewriting = plain.clone().with_rewriter(std::sync::Arc::new(LimitOneRewriter));
    assert_eq!(rewriting.execute_sql(sql, &[]).unwrap().len(), 1, "rewrite applies");
    assert_eq!(plain.execute_sql(sql, &[]).unwrap().len(), 10, "ancestor unaffected");
    assert_eq!(rewriting.plan_cache_stats().entries, 1);
    assert_eq!(plain.plan_cache_stats().entries, 1);
    assert!(rewriting.explain(sql).unwrap().starts_with("Rewrite [limit-one] forced LIMIT 1"));
}

#[test]
fn plan_cache_is_bounded() {
    let session = Session::new(build_executor());
    // Distinct statement texts (inlined literals) each take one entry; the
    // cache must stay bounded instead of growing with the workload.
    for i in 0..1_200 {
        session
            .execute_sql(&format!("SELECT * FROM Customer WHERE c_id = {i}"), &[])
            .unwrap();
    }
    let stats = session.plan_cache_stats();
    assert!(
        stats.entries <= 1_024,
        "cache must be capped, got {} entries",
        stats.entries
    );
    assert_eq!(stats.misses, 1_200, "every distinct text compiles once");
}
