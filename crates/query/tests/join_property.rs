//! Property test: the executor's hash join (shared-segment rows, interned
//! join keys, residual-condition elision) must agree with a naive
//! nested-loop reference join computed directly from the generated data, on
//! randomized schemas (payload width) and row sets.

use nosql_store::{Cluster, ClusterConfig, TableSchema};
use proptest::prelude::*;
use query::{Catalog, ColumnType, Executor, TableDef, TableKind};
use relational::{Row};

/// One generated left row: key, join value, payload seed.
type GenRow = (i64, i64, i64);

fn build_executor(payload_cols: usize) -> Executor {
    let mut left_columns = vec![
        ("l_id".to_string(), ColumnType::Int),
        ("l_k".to_string(), ColumnType::Int),
    ];
    let mut right_columns = vec![
        ("r_id".to_string(), ColumnType::Int),
        ("r_k".to_string(), ColumnType::Int),
    ];
    for p in 0..payload_cols {
        left_columns.push((format!("l_p{p}"), ColumnType::Str));
        right_columns.push((format!("r_p{p}"), ColumnType::Str));
    }
    let mut catalog = Catalog::new();
    catalog.add_table(TableDef::new(
        "JoinLeft",
        left_columns,
        vec!["l_id".to_string()],
        TableKind::Base,
    ));
    catalog.add_table(TableDef::new(
        "JoinRight",
        right_columns,
        vec!["r_id".to_string()],
        TableKind::Base,
    ));
    let cluster = Cluster::new(ClusterConfig::default());
    cluster
        .create_table(TableSchema::new("JoinLeft").with_family("cf"))
        .unwrap();
    cluster
        .create_table(TableSchema::new("JoinRight").with_family("cf"))
        .unwrap();
    Executor::new(cluster, catalog)
}

fn load(executor: &Executor, table: &str, prefix: &str, rows: &[GenRow], payload_cols: usize) {
    for (id, k, seed) in rows {
        let mut row = Row::new()
            .with(format!("{prefix}_id"), *id)
            .with(format!("{prefix}_k"), *k);
        for p in 0..payload_cols {
            row.set(format!("{prefix}_p{p}"), format!("v{seed}_{p}"));
        }
        executor.insert_row(table, &row).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `SELECT * FROM JoinLeft AS l, JoinRight AS r WHERE l.l_k = r.r_k`
    /// must return exactly the id pairs a nested loop over the generated
    /// data produces, with every output row carrying both sides' attributes.
    #[test]
    fn hash_join_matches_nested_loop_reference(
        payload_cols in 0usize..3,
        left in proptest::collection::vec((0i64..40, 0i64..6, 0i64..1000), 0..25),
        right in proptest::collection::vec((100i64..140, 0i64..6, 0i64..1000), 0..25),
    ) {
        // De-duplicate primary keys (last wins, matching store semantics).
        let dedup = |rows: &[GenRow]| -> Vec<GenRow> {
            let mut out: Vec<GenRow> = Vec::new();
            for row in rows {
                out.retain(|(id, _, _)| id != &row.0);
                out.push(*row);
            }
            out
        };
        let left = dedup(&left);
        let right = dedup(&right);

        let executor = build_executor(payload_cols);
        load(&executor, "JoinLeft", "l", &left, payload_cols);
        load(&executor, "JoinRight", "r", &right, payload_cols);

        let result = executor
            .execute_sql(
                "SELECT * FROM JoinLeft AS l, JoinRight AS r WHERE l.l_k = r.r_k",
                &[],
            )
            .unwrap();

        // Reference: nested loop over the generated data.
        let mut expected: Vec<(i64, i64)> = Vec::new();
        for (lid, lk, _) in &left {
            for (rid, rk, _) in &right {
                if lk == rk {
                    expected.push((*lid, *rid));
                }
            }
        }
        expected.sort_unstable();

        let mut actual: Vec<(i64, i64)> = result
            .rows
            .iter()
            .map(|row| {
                (
                    row.get("l.l_id").unwrap().as_int().unwrap(),
                    row.get("r.r_id").unwrap().as_int().unwrap(),
                )
            })
            .collect();
        actual.sort_unstable();
        prop_assert_eq!(actual, expected);

        // Spot-check full row content: every output row must carry both
        // halves' attributes consistent with its id pair.
        for row in &result.rows {
            let lid = row.get("l.l_id").unwrap().as_int().unwrap();
            let rid = row.get("r.r_id").unwrap().as_int().unwrap();
            let (_, lk, lseed) = left.iter().find(|(id, _, _)| *id == lid).unwrap();
            let (_, rk, rseed) = right.iter().find(|(id, _, _)| *id == rid).unwrap();
            prop_assert_eq!(row.get("l.l_k").unwrap().as_int().unwrap(), *lk);
            prop_assert_eq!(row.get("r.r_k").unwrap().as_int().unwrap(), *rk);
            prop_assert_eq!(row.len(), 2 * (2 + payload_cols));
            for p in 0..payload_cols {
                prop_assert_eq!(
                    row.get(&format!("l.l_p{p}")).unwrap().as_str().unwrap(),
                    format!("v{lseed}_{p}")
                );
                prop_assert_eq!(
                    row.get(&format!("r.r_p{p}")).unwrap().as_str().unwrap(),
                    format!("v{rseed}_{p}")
                );
            }
        }
    }
}
