//! Parallel-executor equivalence: the same statements evaluated at
//! `threads` ∈ {2, 4} must return exactly the rows (order included) the
//! serial executor returns — across multi-region full scans, partitioned
//! hash joins, residual filters, parallel top-k and aggregation.

use nosql_store::{Cluster, ClusterConfig};
use query::{baseline, ColumnType, Executor};
use relational::{Relation, Row, Schema};
use sql::parse_statement;

/// A two-table database big enough to split into several regions (small
/// region threshold), so the parallel scan actually partitions work.
fn executor(threads: usize) -> Executor {
    let schema = Schema::new()
        .with_relation(
            Relation::new("Customer")
                .attributes(["c_id", "c_name", "c_group"])
                .primary_key(["c_id"])
                .build(),
        )
        .with_relation(
            Relation::new("Orders")
                .attributes(["o_id", "o_c_id", "o_total"])
                .primary_key(["o_id"])
                .foreign_key("o_c_id", "Customer", "c_id")
                .build(),
        );
    let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| match column {
        "c_id" | "o_id" | "o_c_id" => Some(ColumnType::Int),
        "o_total" => Some(ColumnType::Float),
        _ => Some(ColumnType::Str),
    });
    let cluster = Cluster::new(ClusterConfig {
        region_split_bytes: 4_000,
        ..ClusterConfig::default()
    });
    baseline::create_tables(&cluster, &catalog).unwrap();
    let exec = Executor::new(cluster, catalog).with_threads(threads);

    let customers: Vec<Row> = (1..=300i64)
        .map(|c_id| {
            Row::new()
                .with("c_id", c_id)
                .with("c_name", format!("Customer{c_id:04}"))
                .with("c_group", format!("g{}", c_id % 7))
        })
        .collect();
    exec.bulk_load_rows("Customer", &customers).unwrap();
    let orders: Vec<Row> = (1..=900i64)
        .map(|o_id| {
            Row::new()
                .with("o_id", o_id)
                .with("o_c_id", (o_id - 1) % 300 + 1)
                .with("o_total", o_id as f64 * 0.75)
        })
        .collect();
    exec.bulk_load_rows("Orders", &orders).unwrap();
    exec
}

const QUERIES: &[&str] = &[
    // Multi-region full scan.
    "SELECT * FROM Orders",
    // Partitioned hash join.
    "SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id",
    // Join + single-alias filter + projection.
    "SELECT c.c_name, o.o_total FROM Customer AS c, Orders AS o \
     WHERE c.c_id = o.o_c_id AND o.o_total > 300",
    // Parallel top-k over the join (distinct sort keys).
    "SELECT o.o_id, o.o_total FROM Customer AS c, Orders AS o \
     WHERE c.c_id = o.o_c_id ORDER BY o.o_total DESC LIMIT 9",
    // Single-table top-k.
    "SELECT * FROM Orders ORDER BY o_total LIMIT 7",
    // Store-level LIMIT pushdown (stays serial by design).
    "SELECT * FROM Orders LIMIT 10",
    // Aggregation over the parallel scan.
    "SELECT c_group, COUNT(*) FROM Customer GROUP BY c_group",
];

#[test]
fn parallel_results_equal_serial_results_row_for_row() {
    let serial = executor(1);
    assert!(
        serial.cluster().metrics().tables["Orders"].regions > 1,
        "Orders must span regions for the fan-out to engage"
    );
    for threads in [2usize, 4] {
        let parallel = executor(threads);
        for sql_text in QUERIES {
            let statement = parse_statement(sql_text).unwrap();
            let expected = serial.execute(&statement, &[]).unwrap();
            let actual = parallel.execute(&statement, &[]).unwrap();
            assert_eq!(
                expected.rows, actual.rows,
                "threads={threads}, query: {sql_text}"
            );
        }
    }
}

#[test]
fn join_with_bare_limit_keeps_streaming_early_termination() {
    // A bare LIMIT over a join must stay on the lazily-pulled serial join
    // even at threads > 1: materializing the probe side would scan all 300
    // customers (1 200 store rows total) instead of one cursor page.
    let parallel = executor(4);
    let statement = parse_statement(
        "SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id LIMIT 5",
    )
    .unwrap();
    let before = parallel.cluster().metrics().ops;
    let result = parallel.execute(&statement, &[]).unwrap();
    assert_eq!(result.rows.len(), 5);
    let delta = parallel.cluster().metrics().ops.delta_since(&before);
    assert!(
        delta.scanned_rows < 1_200,
        "probe side must stop early ({} rows scanned)",
        delta.scanned_rows
    );
}

#[test]
fn parallel_execution_cuts_simulated_join_time() {
    let serial = executor(1);
    let parallel = executor(4);
    let statement =
        parse_statement("SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id")
            .unwrap();
    let (_, serial_sim) = serial
        .cluster()
        .clock()
        .measure(|| serial.execute(&statement, &[]).unwrap());
    let (_, parallel_sim) = parallel
        .cluster()
        .clock()
        .measure(|| parallel.execute(&statement, &[]).unwrap());
    assert!(
        parallel_sim < serial_sim,
        "multi-region scan + partitioned probe must merge to less sim time \
         (parallel={parallel_sim} serial={serial_sim})"
    );
}
