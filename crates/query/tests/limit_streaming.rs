//! Streaming-pipeline guarantees: a `LIMIT k` statement must touch a
//! store-row count bounded by `k` plus the cursor page size — independent
//! of the table's row count — and the executor's peak-rows-resident
//! instrumentation must reflect the bounded buffers.

use nosql_store::{Cluster, ClusterConfig, SCAN_PAGE_ROWS};
use query::{baseline, ColumnType, Executor};
use relational::{Relation, Row, Schema};

fn orders_executor(rows: i64) -> Executor {
    let schema = Schema::new().with_relation(
        Relation::new("Orders")
            .attributes(["o_id", "o_total", "o_status"])
            .primary_key(["o_id"])
            .build(),
    );
    let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| match column {
        "o_id" => Some(ColumnType::Int),
        "o_total" => Some(ColumnType::Float),
        _ => Some(ColumnType::Str),
    });
    let cluster = Cluster::new(ClusterConfig::default());
    baseline::create_tables(&cluster, &catalog).unwrap();
    let exec = Executor::new(cluster, catalog);
    let batch: Vec<Row> = (1..=rows)
        .map(|o_id| {
            Row::new()
                .with("o_id", o_id)
                .with("o_total", (o_id % 500) as f64)
                .with("o_status", if o_id % 2 == 0 { "shipped" } else { "open" })
        })
        .collect();
    exec.bulk_load_rows("Orders", &batch).unwrap();
    exec
}

fn scanned_rows(exec: &Executor, sql: &str) -> u64 {
    let before = exec.cluster().metrics().ops;
    let result = exec.execute_sql(sql, &[]).unwrap();
    assert!(!result.rows.is_empty());
    exec.cluster().metrics().ops.delta_since(&before).scanned_rows
}

#[test]
fn bare_limit_pushes_the_row_limit_into_the_store() {
    let exec = orders_executor(2_000);
    let scanned = scanned_rows(&exec, "SELECT * FROM Orders LIMIT 5");
    assert_eq!(scanned, 5, "store scans exactly the limited rows");
}

#[test]
fn limit_store_rows_are_row_count_independent() {
    let small = orders_executor(500);
    let large = orders_executor(4_000);
    let q = "SELECT * FROM Orders LIMIT 25";
    assert_eq!(scanned_rows(&small, q), scanned_rows(&large, q));
}

#[test]
fn filtered_limit_scans_at_most_k_plus_one_page() {
    let exec = orders_executor(3_000);
    // The filter keeps every row but cannot be pushed to the store, so the
    // pipeline pulls lazily: at most one cursor page beyond the limit.
    let scanned = scanned_rows(&exec, "SELECT * FROM Orders WHERE o_total >= 0 LIMIT 5");
    assert!(
        scanned <= 5 + SCAN_PAGE_ROWS as u64,
        "scanned {scanned} rows for LIMIT 5"
    );
}

#[test]
fn page_boundary_limit_does_not_pull_an_extra_page() {
    let exec = orders_executor(3_000);
    // A limit landing exactly on the cursor page size: the consumer must
    // not pull one row past the limit, or a whole extra page gets fetched.
    let scanned = scanned_rows(
        &exec,
        &format!("SELECT * FROM Orders WHERE o_total >= 0 LIMIT {SCAN_PAGE_ROWS}"),
    );
    assert_eq!(scanned, SCAN_PAGE_ROWS as u64);
}

#[test]
fn limit_query_result_matches_unlimited_prefix() {
    let exec = orders_executor(600);
    let limited = exec.execute_sql("SELECT * FROM Orders LIMIT 10", &[]).unwrap();
    let full = exec.execute_sql("SELECT * FROM Orders", &[]).unwrap();
    assert_eq!(limited.rows, full.rows[..10]);
}

#[test]
fn order_by_limit_uses_a_bounded_buffer() {
    let exec = orders_executor(2_000);
    let top = exec
        .execute_sql("SELECT o_id FROM Orders ORDER BY o_id DESC LIMIT 3", &[])
        .unwrap();
    let ids: Vec<i64> = top
        .rows
        .iter()
        .map(|r| r.get("o_id").unwrap().as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![2_000, 1_999, 1_998]);
    assert!(
        top.peak_rows_resident <= 16,
        "top-k held {} rows resident",
        top.peak_rows_resident
    );

    let full = exec.execute_sql("SELECT o_id FROM Orders ORDER BY o_id DESC", &[]).unwrap();
    assert!(
        full.peak_rows_resident >= 2_000,
        "full sort must hold the whole input ({})",
        full.peak_rows_resident
    );
    assert_eq!(&full.rows[..3], &top.rows[..]);
}

#[test]
fn peak_rows_resident_is_reported_for_plain_limits() {
    let exec = orders_executor(2_000);
    let limited = exec.execute_sql("SELECT * FROM Orders LIMIT 7", &[]).unwrap();
    assert!(limited.peak_rows_resident >= 7);
    assert!(
        limited.peak_rows_resident <= 7 + SCAN_PAGE_ROWS,
        "LIMIT 7 held {} rows",
        limited.peak_rows_resident
    );
}
