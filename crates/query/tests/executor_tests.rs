//! End-to-end tests of the SQL skin over the NoSQL store, using the Company
//! example database from the paper.

use nosql_store::{Cluster, ClusterConfig};
use query::{baseline, ColumnType, Executor};
use relational::{company, Row, Value};
use sql::parse_statement;

/// Builds a populated Company database and an executor over it.
fn company_executor() -> Executor {
    let schema = company::company_schema();
    let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| {
        matches!(
            column,
            "AID" | "EID" | "E_DNo" | "EHome_AID" | "EOffice_AID" | "DNo" | "DL_DNo" | "PNo"
                | "P_DNo" | "WO_EID" | "WO_PNo" | "Hours" | "DP_EID" | "DPHome_AID" | "Zip"
        )
        .then_some(ColumnType::Int)
    });
    let cluster = Cluster::new(ClusterConfig::default());
    baseline::create_tables(&cluster, &catalog).unwrap();
    let exec = Executor::new(cluster, catalog);

    // Addresses 1..=6, Departments 1..=2, Employees 1..=4, Projects 1..=3,
    // Works_On pairs, Dependents.
    for aid in 1..=6i64 {
        exec.bulk_load_rows(
            "Address",
            &[Row::new()
                .with("AID", aid)
                .with("Street", format!("{aid} Main St"))
                .with("City", if aid % 2 == 0 { "Nashville" } else { "Memphis" })
                .with("Zip", 37000 + aid)],
        )
        .unwrap();
    }
    for dno in 1..=2i64 {
        exec.bulk_load_rows(
            "Department",
            &[Row::new().with("DNo", dno).with("DName", format!("Dept{dno}"))],
        )
        .unwrap();
        exec.bulk_load_rows(
            "Department_Location",
            &[Row::new()
                .with("DL_DNo", dno)
                .with("DLocation", format!("Building {dno}"))],
        )
        .unwrap();
    }
    for eid in 1..=4i64 {
        exec.bulk_load_rows(
            "Employee",
            &[Row::new()
                .with("EID", eid)
                .with("EName", format!("Employee{eid}"))
                .with("EHome_AID", eid)
                .with("EOffice_AID", eid + 2)
                .with("E_DNo", if eid <= 2 { 1i64 } else { 2 })],
        )
        .unwrap();
    }
    for pno in 1..=3i64 {
        exec.bulk_load_rows(
            "Project",
            &[Row::new()
                .with("PNo", pno)
                .with("PName", format!("Project{pno}"))
                .with("P_DNo", if pno == 3 { 2i64 } else { 1 })],
        )
        .unwrap();
    }
    let works = [(1i64, 1i64, 10i64), (1, 2, 20), (2, 1, 30), (3, 3, 40), (4, 3, 40)];
    for (eid, pno, hours) in works {
        exec.bulk_load_rows(
            "Works_On",
            &[Row::new()
                .with("WO_EID", eid)
                .with("WO_PNo", pno)
                .with("Hours", hours)],
        )
        .unwrap();
    }
    exec.bulk_load_rows(
        "Dependent",
        &[Row::new()
            .with("DP_EID", 1)
            .with("DPName", "Kid")
            .with("DPHome_AID", 1)],
    )
    .unwrap();
    exec
}

#[test]
fn point_select_by_primary_key() {
    let exec = company_executor();
    let stmt = parse_statement("SELECT * FROM Employee WHERE EID = ?").unwrap();
    let result = exec.execute(&stmt, &[Value::Int(2)]).unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(result.rows[0].get("EName").unwrap(), &Value::str("Employee2"));
}

#[test]
fn full_scan_and_filters() {
    let exec = company_executor();
    let all = exec.execute_sql("SELECT * FROM Address", &[]).unwrap();
    assert_eq!(all.len(), 6);
    let filtered = exec
        .execute_sql("SELECT * FROM Address WHERE City = 'Nashville'", &[])
        .unwrap();
    assert_eq!(filtered.len(), 3);
    let range = exec
        .execute_sql("SELECT * FROM Works_On WHERE Hours >= 30", &[])
        .unwrap();
    assert_eq!(range.len(), 3);
}

#[test]
fn composite_key_prefix_scan() {
    let exec = company_executor();
    // Only the first key attribute bound: prefix scan over Works_On.
    let result = exec
        .execute_sql("SELECT * FROM Works_On WHERE WO_EID = 1", &[])
        .unwrap();
    assert_eq!(result.len(), 2);
}

#[test]
fn paper_query_w1_employee_home_address_join() {
    let exec = company_executor();
    let stmt = parse_statement(
        "SELECT * FROM Employee as e, Address as a WHERE a.AID = e.EHome_AID AND e.EID = ?",
    )
    .unwrap();
    let result = exec.execute(&stmt, &[Value::Int(3)]).unwrap();
    assert_eq!(result.len(), 1);
    let row = &result.rows[0];
    assert_eq!(row.get("e.EName").unwrap(), &Value::str("Employee3"));
    assert_eq!(row.get("a.AID").unwrap(), &Value::Int(3));
}

#[test]
fn paper_query_w2_three_way_join() {
    let exec = company_executor();
    let stmt = parse_statement(
        "SELECT * FROM Department as d, Employee as e, Works_On as wo \
         WHERE d.DNo = e.E_DNo AND e.EID = wo.WO_EID AND d.DNo = ?",
    )
    .unwrap();
    let result = exec.execute(&stmt, &[Value::Int(1)]).unwrap();
    // Department 1 has employees 1 and 2; employee 1 works on 2 projects,
    // employee 2 on 1 → 3 joined rows.
    assert_eq!(result.len(), 3);
    for row in &result.rows {
        assert_eq!(row.get("d.DName").unwrap(), &Value::str("Dept1"));
    }
}

#[test]
fn paper_query_w3_filter_on_non_key_join() {
    let exec = company_executor();
    let stmt = parse_statement(
        "SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID AND wo.Hours = ?",
    )
    .unwrap();
    let result = exec.execute(&stmt, &[Value::Int(40)]).unwrap();
    assert_eq!(result.len(), 2);
}

#[test]
fn self_join_with_different_aliases() {
    let exec = company_executor();
    // Pairs of employees working on the same project.
    let result = exec
        .execute_sql(
            "SELECT * FROM Works_On as w1, Works_On as w2 \
             WHERE w1.WO_PNo = w2.WO_PNo AND w1.WO_EID <> w2.WO_EID",
            &[],
        )
        .unwrap();
    // Project 1: employees 1,2 -> 2 ordered pairs; project 3: employees 3,4 -> 2.
    assert_eq!(result.len(), 4);
}

#[test]
fn aggregates_group_by_order_by_limit() {
    let exec = company_executor();
    let result = exec
        .execute_sql(
            "SELECT wo.WO_EID, SUM(wo.Hours) AS total FROM Works_On as wo \
             GROUP BY wo.WO_EID ORDER BY total DESC LIMIT 2",
            &[],
        )
        .unwrap();
    assert_eq!(result.len(), 2);
    assert_eq!(result.rows[0].get("total").unwrap(), &Value::Int(40));
    let count = exec
        .execute_sql("SELECT COUNT(*) AS n FROM Employee", &[])
        .unwrap();
    assert_eq!(count.rows[0].get("n").unwrap(), &Value::Int(4));
}

#[test]
fn order_by_string_column() {
    let exec = company_executor();
    let result = exec
        .execute_sql("SELECT EName FROM Employee ORDER BY EName DESC", &[])
        .unwrap();
    assert_eq!(result.rows[0].get("EName").unwrap(), &Value::str("Employee4"));
    assert_eq!(result.len(), 4);
}

#[test]
fn index_scan_is_used_for_indexed_column() {
    let exec = company_executor();
    let before = exec.cluster().metrics().ops.clone();
    let result = exec
        .execute_sql("SELECT EID, EName, E_DNo FROM Employee WHERE E_DNo = 1", &[])
        .unwrap();
    assert_eq!(result.len(), 2);
    let delta = exec.cluster().metrics().ops.delta_since(&before);
    // The covered index satisfies the query with a single scan and no
    // full-table read of Employee.
    assert_eq!(delta.scans, 1);
    assert_eq!(delta.scanned_rows, 2);
}

#[test]
fn insert_update_delete_round_trip_with_index_maintenance() {
    let exec = company_executor();
    exec.execute_sql(
        "INSERT INTO Employee (EID, EName, EHome_AID, EOffice_AID, E_DNo) VALUES (?, ?, ?, ?, ?)",
        &[
            Value::Int(9),
            Value::str("NewHire"),
            Value::Int(1),
            Value::Int(2),
            Value::Int(2),
        ],
    )
    .unwrap();
    let by_dept = exec
        .execute_sql("SELECT EID, EName, E_DNo FROM Employee WHERE E_DNo = 2", &[])
        .unwrap();
    assert_eq!(by_dept.len(), 3, "index must reflect the insert");

    exec.execute_sql(
        "UPDATE Employee SET E_DNo = ? WHERE EID = ?",
        &[Value::Int(1), Value::Int(9)],
    )
    .unwrap();
    let moved = exec
        .execute_sql("SELECT EID FROM Employee WHERE E_DNo = 1", &[])
        .unwrap();
    assert_eq!(moved.len(), 3, "index entry must move with the update");
    let old_dept = exec
        .execute_sql("SELECT EID FROM Employee WHERE E_DNo = 2", &[])
        .unwrap();
    assert_eq!(old_dept.len(), 2, "stale index entry must be removed");

    exec.execute_sql("DELETE FROM Employee WHERE EID = ?", &[Value::Int(9)]).unwrap();
    let gone = exec
        .execute_sql("SELECT * FROM Employee WHERE EID = 9", &[])
        .unwrap();
    assert!(gone.is_empty());
    let index_gone = exec
        .execute_sql("SELECT EID FROM Employee WHERE E_DNo = 1", &[])
        .unwrap();
    assert_eq!(index_gone.len(), 2);
}

#[test]
fn update_without_full_key_is_rejected() {
    let exec = company_executor();
    let err = exec
        .execute_sql("UPDATE Works_On SET Hours = ? WHERE WO_EID = ?", &[Value::Int(1), Value::Int(1)])
        .unwrap_err();
    assert!(matches!(err, query::QueryError::IncompleteKey { .. }));
}

#[test]
fn missing_parameter_and_unknown_table_errors() {
    let exec = company_executor();
    assert!(matches!(
        exec.execute_sql("SELECT * FROM Employee WHERE EID = ?", &[]),
        Err(query::QueryError::MissingParameter(0))
    ));
    assert!(matches!(
        exec.execute_sql("SELECT * FROM Nonexistent", &[]),
        Err(query::QueryError::UnknownTable(_))
    ));
    assert!(matches!(
        exec.execute_sql("INSERT INTO Employee (Bogus) VALUES (1)", &[]),
        Err(query::QueryError::UnknownColumn(_))
    ));
}

#[test]
fn joins_charge_more_simulated_time_than_point_reads() {
    let exec = company_executor();
    let clock = exec.cluster().clock().clone();
    let (_, point) = clock.measure(|| {
        exec.execute_sql("SELECT * FROM Employee WHERE EID = 1", &[]).unwrap()
    });
    let (_, join) = clock.measure(|| {
        exec.execute_sql(
            "SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID",
            &[],
        )
        .unwrap()
    });
    assert!(join > point, "join={join} point={point}");
}

#[test]
fn projection_returns_only_requested_columns() {
    let exec = company_executor();
    let result = exec
        .execute_sql("SELECT e.EName FROM Employee as e WHERE e.EID = 1", &[])
        .unwrap();
    assert_eq!(result.rows[0].len(), 1);
    assert!(result.rows[0].get("e.EName").is_some());
}
