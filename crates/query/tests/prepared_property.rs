//! Property test: for randomly generated SELECT statements,
//! `Session::prepare(sql).execute(params)` must return exactly the rows of
//! the one-shot `Executor::execute_sql(sql, params)` path, and repeated
//! preparation must be served from the plan cache (counter-asserted).
//!
//! The generator covers the shapes the planner distinguishes: single-table
//! vs equi-join FROM clauses, key/index/full access paths (driven by which
//! filters appear), parameter vs literal operands, residual cross-alias
//! predicates, GROUP BY + aggregates, ORDER BY with and without LIMIT
//! (top-k), and bare LIMIT (store pushdown).

use nosql_store::{Cluster, ClusterConfig};
use proptest::prelude::*;
use query::{baseline, ColumnType, Executor, Session};
use relational::{Relation, Row, Schema, Value};
use std::sync::OnceLock;

/// A shared populated database: two relations with an FK edge, enough rows
/// to exercise multi-row joins, groups and ties.
fn executor() -> &'static Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| {
        let schema = Schema::new()
            .with_relation(
                Relation::new("Customer")
                    .attributes(["c_id", "c_name", "c_group"])
                    .primary_key(["c_id"])
                    .build(),
            )
            .with_relation(
                Relation::new("Orders")
                    .attributes(["o_id", "o_c_id", "o_total"])
                    .primary_key(["o_id"])
                    .foreign_key("o_c_id", "Customer", "c_id")
                    .build(),
            );
        let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| match column {
            "c_id" | "o_id" | "o_c_id" | "o_total" => Some(ColumnType::Int),
            _ => Some(ColumnType::Str),
        });
        let cluster = Cluster::new(ClusterConfig::default());
        baseline::create_tables(&cluster, &catalog).unwrap();
        let exec = Executor::new(cluster, catalog);
        let customers: Vec<Row> = (1..=40i64)
            .map(|c_id| {
                Row::new()
                    .with("c_id", c_id)
                    .with("c_name", format!("Customer{c_id:03}"))
                    .with("c_group", format!("g{}", c_id % 5))
            })
            .collect();
        exec.bulk_load_rows("Customer", &customers).unwrap();
        let orders: Vec<Row> = (1..=120i64)
            .map(|o_id| {
                Row::new()
                    .with("o_id", o_id)
                    .with("o_c_id", (o_id - 1) % 40 + 1)
                    .with("o_total", o_id * 3 % 97)
            })
            .collect();
        exec.bulk_load_rows("Orders", &orders).unwrap();
        exec
    })
}

/// A generated statement: SQL text plus its positional parameter values.
#[derive(Debug, Clone)]
struct GenSelect {
    sql: String,
    params: Vec<Value>,
}

/// Builds one SELECT from structural choices.  Parameters and literals are
/// both exercised: each chosen filter flips between `?` (appending to
/// `params`) and an inline literal.
#[allow(clippy::too_many_arguments)]
fn compose(
    join: bool,
    wildcard: bool,
    filter_c_id: Option<(i64, bool)>,
    filter_group: Option<(i64, bool)>,
    filter_total: Option<(i64, bool)>,
    aggregate: bool,
    order_desc: Option<bool>,
    limit: Option<usize>,
) -> GenSelect {
    let mut params = Vec::new();
    let mut conditions: Vec<String> = Vec::new();
    let qualify = |bare: &str, q: &str, join: bool| {
        if join {
            format!("{q}.{bare}")
        } else {
            bare.to_string()
        }
    };

    if join {
        conditions.push("c.c_id = o.o_c_id".to_string());
    }
    if let Some((v, as_param)) = filter_c_id {
        let col = qualify("c_id", "c", join);
        if as_param {
            conditions.push(format!("{col} = ?"));
            params.push(Value::Int(v));
        } else {
            conditions.push(format!("{col} = {v}"));
        }
    }
    if let Some((v, as_param)) = filter_group {
        let col = qualify("c_group", "c", join);
        if as_param {
            conditions.push(format!("{col} = ?"));
            params.push(Value::str(format!("g{v}")));
        } else {
            conditions.push(format!("{col} = 'g{v}'"));
        }
    }
    if join {
        if let Some((v, as_param)) = filter_total {
            if as_param {
                conditions.push("o.o_total > ?".to_string());
                params.push(Value::Int(v));
            } else {
                conditions.push(format!("o.o_total > {v}"));
            }
        }
    }

    let items = if aggregate {
        let group_col = qualify("c_group", "c", join);
        format!("{group_col}, COUNT(*) AS n")
    } else if wildcard {
        "*".to_string()
    } else if join {
        "c.c_name, o.o_id, o.o_total".to_string()
    } else {
        "c_id, c_name".to_string()
    };

    let from = if join {
        "Customer AS c, Orders AS o"
    } else {
        "Customer AS c"
    };

    let mut sql = format!("SELECT {items} FROM {from}");
    if !conditions.is_empty() {
        sql.push_str(&format!(" WHERE {}", conditions.join(" AND ")));
    }
    if aggregate {
        sql.push_str(&format!(" GROUP BY {}", qualify("c_group", "c", join)));
        if let Some(desc) = order_desc {
            sql.push_str(&format!(" ORDER BY n{}", if desc { " DESC" } else { "" }));
        }
    } else if let Some(desc) = order_desc {
        let key = if join { "o.o_total" } else { "c_name" };
        sql.push_str(&format!(" ORDER BY {key}{}", if desc { " DESC" } else { "" }));
    }
    if let Some(k) = limit {
        sql.push_str(&format!(" LIMIT {k}"));
    }
    GenSelect { sql, params }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// prepared execution ≡ one-shot execution, row for row (order
    /// included), and a repeated prepare hits the plan cache.
    #[test]
    fn prepared_matches_one_shot_and_caches(
        join in any::<bool>(),
        wildcard in any::<bool>(),
        with_c_id in proptest::option::of((1i64..45, any::<bool>())),
        with_group in proptest::option::of((0i64..6, any::<bool>())),
        with_total in proptest::option::of((0i64..97, any::<bool>())),
        aggregate in any::<bool>(),
        order_desc in proptest::option::of(any::<bool>()),
        limit in proptest::option::of(1usize..15),
    ) {
        let generated = compose(
            join, wildcard, with_c_id, with_group, with_total, aggregate, order_desc, limit,
        );
        let exec = executor();

        // One-shot: all four pipeline phases per call.
        let oneshot = exec.execute_sql(&generated.sql, &generated.params).unwrap();

        // Prepared: compile once, execute twice with the same parameters.
        let session = Session::new(exec.clone());
        let stmt = session.prepare(&generated.sql).unwrap();
        let first = stmt.execute(&generated.params).unwrap();
        let second = stmt.execute(&generated.params).unwrap();
        prop_assert_eq!(&oneshot.rows, &first.rows, "prepared != one-shot: {}", &generated.sql);
        prop_assert_eq!(&first.rows, &second.rows, "re-execution differs: {}", &generated.sql);

        // The second preparation of the same text must be a cache hit, and
        // executing through the session must serve the cached plan.
        let before = session.plan_cache_stats();
        prop_assert_eq!(before.misses, 1, "exactly one compile: {}", &generated.sql);
        session.prepare(&generated.sql).unwrap();
        let via_session = session.execute_sql(&generated.sql, &generated.params).unwrap();
        let after = session.plan_cache_stats();
        prop_assert_eq!(after.hits, before.hits + 2, "cache hits: {}", &generated.sql);
        prop_assert_eq!(after.misses, 1);
        prop_assert_eq!(&via_session.rows, &oneshot.rows);
    }
}
