//! The `key-range` access path: a both-sided range filter on a table's
//! leading key attribute bounds the store walk instead of scanning the
//! whole table — the access path Synergy upqueries are planned onto.
//! Bounds are only applied when the encoded keys are order-safe (string
//! keys, or non-negative integers of equal decimal width); otherwise the
//! operator degrades to a full walk and the ordinary stream filters keep
//! the result exact either way.

use nosql_store::{Cluster, ClusterConfig};
use query::{baseline, ColumnType, Executor, Session};
use relational::{Relation, Row, Schema, Value};

fn build_executor(orders: i64) -> Executor {
    let schema = Schema::new().with_relation(
        Relation::new("Orders")
            .attributes(["o_id", "o_tag", "o_total"])
            .primary_key(["o_id"])
            .build(),
    );
    let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| match column {
        "o_id" | "o_total" => Some(ColumnType::Int),
        _ => Some(ColumnType::Str),
    });
    let cluster = Cluster::new(ClusterConfig::default());
    baseline::create_tables(&cluster, &catalog).unwrap();
    let exec = Executor::new(cluster, catalog);
    for o_id in 1..=orders {
        exec.insert_row(
            "Orders",
            &Row::new()
                .with("o_id", o_id)
                .with("o_tag", format!("T{o_id:03}"))
                .with("o_total", o_id * 10),
        )
        .unwrap();
    }
    exec
}

fn range_ids(session: &Session, lo: i64, hi: i64) -> Vec<i64> {
    let result = session
        .execute_sql(
            "SELECT o_id FROM Orders WHERE o_id >= ? AND o_id <= ?",
            &[Value::Int(lo), Value::Int(hi)],
        )
        .unwrap();
    let mut ids: Vec<i64> = result
        .rows
        .iter()
        .map(|r| match r.get("o_id").unwrap() {
            Value::Int(v) => *v,
            other => panic!("o_id is Int, got {other:?}"),
        })
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn planner_selects_key_range_for_bounded_leading_key() {
    let session = Session::new(build_executor(9));
    let explain = session
        .execute_sql(
            "EXPLAIN SELECT o_id FROM Orders WHERE o_id >= ? AND o_id <= ?",
            &[],
        )
        .unwrap();
    let rendered: String = explain.rows.iter().map(|r| r.to_string()).collect();
    assert!(
        rendered.contains("key-range"),
        "both-sided leading-key range plans as key-range: {rendered}"
    );

    // One-sided ranges and non-key ranges keep the full scan.
    for sql in [
        "EXPLAIN SELECT o_id FROM Orders WHERE o_id >= ?",
        "EXPLAIN SELECT o_id FROM Orders WHERE o_total >= ? AND o_total <= ?",
    ] {
        let explain = session.execute_sql(sql, &[]).unwrap();
        let rendered: String = explain.rows.iter().map(|r| r.to_string()).collect();
        assert!(
            !rendered.contains("key-range"),
            "{sql} must not plan as key-range: {rendered}"
        );
    }
}

#[test]
fn safe_bounds_clamp_the_walk_and_stay_exact() {
    let exec = build_executor(9);
    let session = Session::new(exec.clone());
    // Single-digit universe: encoded Int keys are order-safe.
    let before = exec.cluster().metrics().ops;
    assert_eq!(range_ids(&session, 3, 5), vec![3, 4, 5]);
    let scanned = exec.cluster().metrics().ops.delta_since(&before).scanned_rows;
    assert!(scanned <= 4, "the walk is clamped to the range, scanned {scanned}");
}

#[test]
fn width_mixed_and_negative_bounds_fall_back_but_stay_exact() {
    let session = Session::new(build_executor(25));
    // 5..=20 mixes decimal widths: plain-decimal encoding is not
    // order-preserving there, so the operator walks fully — exact anyway.
    assert_eq!(range_ids(&session, 5, 20), (5..=20).collect::<Vec<_>>());
    assert_eq!(range_ids(&session, -3, 4), (1..=4).collect::<Vec<_>>());
}

#[test]
fn point_range_matches_key_get_semantics() {
    let session = Session::new(build_executor(12));
    // lo == hi is the upquery shape: always encode-safe.
    assert_eq!(range_ids(&session, 7, 7), vec![7]);
    assert_eq!(range_ids(&session, 13, 13), Vec::<i64>::new());
    // An inverted range is empty.
    assert_eq!(range_ids(&session, 9, 2), Vec::<i64>::new());
}

#[test]
fn string_keys_range_scan() {
    let schema = Schema::new().with_relation(
        Relation::new("Tags")
            .attributes(["tag", "n"])
            .primary_key(["tag"])
            .build(),
    );
    let catalog = baseline::baseline_catalog_with_types(&schema, &|_, column| match column {
        "n" => Some(ColumnType::Int),
        _ => Some(ColumnType::Str),
    });
    let cluster = Cluster::new(ClusterConfig::default());
    baseline::create_tables(&cluster, &catalog).unwrap();
    let exec = Executor::new(cluster, catalog);
    for (i, tag) in ["alpha", "beta", "delta", "gamma", "omega"].iter().enumerate() {
        exec.insert_row("Tags", &Row::new().with("tag", *tag).with("n", i as i64))
            .unwrap();
    }
    let session = Session::new(exec);
    let result = session
        .execute_sql(
            "SELECT tag FROM Tags WHERE tag >= ? AND tag <= ?",
            &[Value::str("beta"), Value::str("gamma")],
        )
        .unwrap();
    let mut tags: Vec<String> = result.rows.iter().map(|r| r.to_string()).collect();
    tags.sort();
    assert_eq!(tags.len(), 3, "beta, delta, gamma: {tags:?}");
}
